#include "dpmerge/synth/cluster_synth.h"

#include <cassert>

#include "dpmerge/obs/obs.h"
#include "dpmerge/synth/csa_tree.h"

namespace dpmerge::synth {

using analysis::InfoAnalysis;
using analysis::InfoContent;
using cluster::Cluster;
using cluster::Term;
using dfg::Edge;
using dfg::EdgeId;
using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;
using netlist::NetId;
using netlist::Netlist;
using netlist::Signal;

Signal operand_signal(Netlist& net, const Graph& g, EdgeId eid,
                      const std::vector<Signal>& signals) {
  const Edge& e = g.edge(eid);
  const dfg::Node& dst = g.node(e.dst);
  const Signal& src = signals[static_cast<std::size_t>(e.src.value)];
  assert(src.width() == g.node(e.src).width && "source not yet synthesised");
  const Signal carried = net.resize(src, e.width, e.sign);
  const Sign second =
      dst.kind == OpKind::Extension ? dst.ext_sign : e.sign;
  return net.resize(carried, dst.width, second);
}

namespace {

/// Radix-4 (modified Booth) product rows: recodes the multiplier `b`
/// (interpreted per `tb`) into digits d_j in {-2,-1,0,1,2}, each producing
/// one row (-1)^neg * |d_j| * A << 2j. Negative rows contribute their
/// bitwise complement plus a +1 correction, which CsaTree::add_row handles.
void booth_rows(Netlist& net, CsaTree& tree, const Signal& a_ext,
                const Signal& b_raw, Sign tb, int base_shift, bool negate,
                int W) {
  // Extend b by two bits so the top Booth window is well-defined for both
  // signednesses (unsigned gains explicit 0s, signed replicates the sign).
  const Signal b = net.resize(b_raw, b_raw.width() + 2, tb);
  auto bbit = [&](int i) {
    return i < 0 ? net.const0() : b.bit(std::min(i, b.width() - 1));
  };
  for (int j = 0; 2 * j < b_raw.width() + 1; ++j) {
    if (base_shift + 2 * j >= W) break;  // weight beyond 2^W drops out
    const netlist::NetId x0 = bbit(2 * j - 1);
    const netlist::NetId x1 = bbit(2 * j);
    const netlist::NetId x2 = bbit(2 * j + 1);
    // |d| == 1 when x1 != x0; |d| == 2 when x2 != x1 == x0; neg when x2.
    const netlist::NetId one = net.xor2(x1, x0);
    const netlist::NetId two =
        net.and2(net.xor2(x2, x1), net.xnor2(x1, x0));
    const netlist::NetId neg = x2;

    // Row magnitude: (one ? A : 0) | (two ? A >> ... shifted by one) at
    // column base_shift + 2j + i.
    Signal row;
    row.bits.assign(static_cast<std::size_t>(W), net.const0());
    const int off = base_shift + 2 * j;
    for (int ci = off; ci < W; ++ci) {
      const int i = ci - off;
      const netlist::NetId m1 = net.and2(one, a_ext.bit(i));
      const netlist::NetId m2 =
          i >= 1 ? net.and2(two, a_ext.bit(i - 1)) : net.const0();
      row.bits[static_cast<std::size_t>(ci)] = net.or2(m1, m2);
    }
    // The digit's negation must flip the *whole* W-bit row (the value is
    // row * (-1)^neg): columns below `off` hold zeros that become ones.
    // CsaTree::add_row's negative path does exactly that, but here the
    // negation is data-dependent (neg is a net), so fold it in bitwise:
    // negated-or-not bit = row_bit XOR neg, plus `neg` at column 0.
    for (int ci = 0; ci < W; ++ci) {
      row.bits[static_cast<std::size_t>(ci)] =
          net.xor2(row.bits[static_cast<std::size_t>(ci)], neg);
    }
    tree.add_row(row, negate);
    if (!negate) {
      // v = (row XOR neg) + neg: the +neg correction completes the
      // conditional two's complement.
      tree.add_bit(0, neg);
    } else {
      // The term contributes -v = -(row' + neg) = add_row(negated row')
      // plus (-neg). In W-bit two's complement -neg is simply W copies of
      // the neg bit (0 -> 0, 1 -> all ones).
      Signal minus_neg;
      minus_neg.bits.assign(static_cast<std::size_t>(W), neg);
      tree.add_row(minus_neg, false);
    }
  }
}

}  // namespace

Signal synthesize_cluster(Netlist& net, const Graph& g, const Cluster& c,
                          const InfoAnalysis& ia,
                          const std::vector<Signal>& signals, AdderArch arch,
                          bool booth, ClusterSynthStats* stats) {
  const int W = g.node(c.root).width;
  obs::Span span("synth.cluster",
                 obs::TraceArgs()
                     .add("root", static_cast<std::int64_t>(c.root.value))
                     .add("width", W)
                     .add("members", static_cast<std::int64_t>(c.nodes.size())));
  obs::stat_add("synth.clusters");
  CsaTree tree(net, W);
  const auto flat = cluster::flatten_cluster(g, c);

  // Shifts a W-wide row left by `s` columns (zero fill, overflow drops).
  auto shifted_row = [&](const Signal& row, int s) {
    if (s == 0) return row;
    Signal r;
    r.bits.assign(static_cast<std::size_t>(W), net.const0());
    for (int i = 0; i + s < W; ++i) {
      r.bits[static_cast<std::size_t>(i + s)] = row.bit(i);
    }
    return r;
  };

  for (const Term& t : flat.terms) {
    if (t.factors.size() == 1) {
      const EdgeId e = t.factors[0];
      const Signal op = operand_signal(net, g, e, signals);
      const InfoContent claim = ia.operand(e);
      tree.add_row(shifted_row(net.resize(op, W, claim.sign), t.shift),
                   t.negate);
      continue;
    }
    // Product term: partial-product rows at the root width, no intermediate
    // carry propagation. The multiplicand is extended by its claim's
    // signedness; the multiplier's top bit has negative weight iff its
    // claim is signed (Baugh-Wooley-style handling via row negation).
    assert(t.factors.size() == 2);
    const Signal a = operand_signal(net, g, t.factors[0], signals);
    const Signal b = operand_signal(net, g, t.factors[1], signals);
    const Sign ta = ia.operand(t.factors[0]).sign;
    const Sign tb = ia.operand(t.factors[1]).sign;
    const Signal a_ext = net.resize(a, W, ta);
    if (booth) {
      booth_rows(net, tree, a_ext, b, tb, t.shift, t.negate, W);
      continue;
    }
    const int b_used = std::min(b.width(), W);
    for (int j = 0; j < b_used; ++j) {
      Signal row;
      row.bits.assign(static_cast<std::size_t>(W), net.const0());
      for (int i = 0; i + j + t.shift < W; ++i) {
        row.bits[static_cast<std::size_t>(i + j + t.shift)] =
            net.and2(b.bit(j), a_ext.bit(i));
      }
      const bool negative_weight =
          (tb == Sign::Signed) && (j == b.width() - 1);
      tree.add_row(row, negative_weight != t.negate);
    }
  }

  if (stats) stats->addend_rows = tree.rows_added();
  Signal out = tree.reduce_and_sum(arch);
  if (stats) {
    stats->csa_stages = tree.stages();
    stats->used_cpa = true;
  }
  // Degenerate single-addend clusters can come back narrower paths of
  // constants; the width is always W by construction.
  assert(out.width() == W);
  return out;
}

}  // namespace dpmerge::synth
