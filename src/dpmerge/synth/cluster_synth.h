#pragma once

#include <vector>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/cluster/flatten.h"
#include "dpmerge/cluster/partition.h"
#include "dpmerge/netlist/netlist.h"
#include "dpmerge/synth/cpa.h"

namespace dpmerge::synth {

/// Statistics about one synthesised cluster (reported by benches).
struct ClusterSynthStats {
  int addend_rows = 0;
  int csa_stages = 0;
  bool used_cpa = false;
};

/// Synthesises one cluster as a sum of addends: every term of the flattened
/// form contributes rows to a single CSA tree at the root's width W
/// (products contribute their partial-product rows directly — no
/// intermediate carry-propagate adder), and one final CPA produces the
/// cluster output.
///
/// `node_signals` must hold the already-synthesised signal of every node
/// feeding the cluster; extension signedness of addends comes from the
/// information-content claims (`ia`), which the break conditions guarantee
/// to be exact wherever it matters (see DESIGN.md §5).
/// `booth` switches product rows from simple AND-array partial products to
/// radix-4 (modified Booth) recoding — roughly half the rows per
/// multiplier, the optimisation the paper's reference chain ([4], [5])
/// applies inside CSA trees.
netlist::Signal synthesize_cluster(
    netlist::Netlist& net, const dfg::Graph& g, const cluster::Cluster& c,
    const analysis::InfoAnalysis& ia,
    const std::vector<netlist::Signal>& node_signals, AdderArch arch,
    bool booth = false, ClusterSynthStats* stats = nullptr);

/// The operand signal delivered by edge `e` (the netlist twin of
/// Evaluator::operand_via_edge): source signal resized to w(e) with t(e),
/// then to the destination width with t(e) (or the Extension node's t(N)).
netlist::Signal operand_signal(netlist::Netlist& net, const dfg::Graph& g,
                               dfg::EdgeId e,
                               const std::vector<netlist::Signal>& signals);

}  // namespace dpmerge::synth
