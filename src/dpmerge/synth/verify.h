#pragma once

#include <string>

#include "dpmerge/dfg/eval.h"
#include "dpmerge/netlist/netlist.h"

namespace dpmerge::synth {

/// Checks a synthesised netlist against the DFG reference interpreter on
/// `trials` random stimuli plus the all-zeros/all-ones corner patterns,
/// matching buses to DFG inputs/outputs by name. Returns false and fills
/// `why` on the first mismatch. This is the acceptance gate every flow must
/// pass in the test suite.
///
/// Stimuli are simulated through the word-parallel `PackedSimulator` in
/// batches of up to 64 lanes; name->bus bindings are resolved once up
/// front. The random stimulus sequence (and hence the verdict) is
/// identical to `verify_netlist_scalar`.
bool verify_netlist(const netlist::Netlist& net, const dfg::Graph& g,
                    int trials, Rng& rng, std::string* why = nullptr);

/// Scalar reference implementation (one `Simulator::run` per trial). Kept
/// as the oracle the packed path is property-tested against; use
/// `verify_netlist` everywhere else.
bool verify_netlist_scalar(const netlist::Netlist& net, const dfg::Graph& g,
                           int trials, Rng& rng, std::string* why = nullptr);

}  // namespace dpmerge::synth
