#pragma once

#include <string>

#include "dpmerge/dfg/eval.h"
#include "dpmerge/netlist/netlist.h"

namespace dpmerge::synth {

/// Checks a synthesised netlist against the DFG reference interpreter on
/// `trials` random stimuli plus the all-zeros/all-ones corner patterns,
/// matching buses to DFG inputs/outputs by name. Returns false and fills
/// `why` on the first mismatch. This is the acceptance gate every flow must
/// pass in the test suite.
bool verify_netlist(const netlist::Netlist& net, const dfg::Graph& g,
                    int trials, Rng& rng, std::string* why = nullptr);

}  // namespace dpmerge::synth
