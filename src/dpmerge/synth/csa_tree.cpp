#include "dpmerge/synth/csa_tree.h"

#include <cassert>
#include <tuple>

#include "dpmerge/obs/obs.h"

namespace dpmerge::synth {

using netlist::NetId;
using netlist::Netlist;
using netlist::Signal;

CsaTree::CsaTree(Netlist& n, int width) : net_(n), width_(width) {
  assert(width >= 1);
  columns_.resize(static_cast<std::size_t>(width));
}

void CsaTree::add_bit(int column, NetId bit) {
  if (column >= width_) return;  // weight >= 2^W: drops out mod 2^W
  if (bit == net_.const0()) return;
  columns_[static_cast<std::size_t>(column)].push_back(bit);
}

void CsaTree::add_row(const Signal& row, bool negative) {
  assert(row.width() == width_);
  ++rows_;
  if (!negative) {
    for (int i = 0; i < width_; ++i) add_bit(i, row.bit(i));
    return;
  }
  // -r = ~r + 1 (mod 2^W). Sign-extension fill nets share one inverter.
  const Signal inverted = net_.invert(row);
  for (int i = 0; i < width_; ++i) add_bit(i, inverted.bit(i));
  add_bit(0, net_.const1());
}

void CsaTree::add_constant(const BitVector& v) {
  for (int i = 0; i < std::min(v.width(), width_); ++i) {
    if (v.bit(i)) add_bit(i, net_.const1());
  }
}

Signal CsaTree::reduce_and_sum(AdderArch arch) {
  obs::Span span("synth.csa.reduce",
                 obs::TraceArgs().add("width", width_).add("rows", rows_));
  stages_ = 0;
  // Dadda-style schedule: reduce to successive target heights 2, 3, 4, 6,
  // 9, 13, ... using full adders, with a half adder only when one bit over
  // target. Fewer compressors and shallower logic than eager Wallace.
  std::size_t max_h = 0;
  for (const auto& col : columns_) max_h = std::max(max_h, col.size());
  std::vector<std::size_t> targets{2};
  while (targets.back() < max_h) {
    targets.push_back(targets.back() * 3 / 2);
  }
  for (auto it = targets.rbegin(); it != targets.rend(); ++it) {
    const std::size_t t = *it;
    if (t >= max_h && t != 2) continue;
    bool did_work = false;
    // LSB-first so carries land in columns processed later this stage.
    for (int c = 0; c < width_; ++c) {
      auto& col = columns_[static_cast<std::size_t>(c)];
      std::size_t take = 0;
      // Compressor outputs go to the back of the column (they count toward
      // the target height and are only re-consumed in a later pass).
      while (col.size() - take > t) {
        NetId sum, carry;
        if (col.size() - take == t + 1) {
          std::tie(sum, carry) = net_.half_adder(col[take], col[take + 1]);
          take += 2;
        } else {
          std::tie(sum, carry) =
              net_.full_adder(col[take], col[take + 1], col[take + 2]);
          take += 3;
        }
        col.push_back(sum);
        if (c + 1 < width_ && carry != net_.const0()) {
          columns_[static_cast<std::size_t>(c + 1)].push_back(carry);
        }
        did_work = true;
      }
      col.erase(col.begin(), col.begin() + static_cast<std::ptrdiff_t>(take));
    }
    if (did_work) ++stages_;
    max_h = 0;
    for (const auto& col : columns_) max_h = std::max(max_h, col.size());
  }

  obs::stat_add("synth.csa.trees");
  obs::stat_add("synth.csa.rows", rows_);
  obs::stat_add("synth.csa.stages", stages_);
  obs::stat_max("synth.csa.max_stages", stages_);

  Signal a, b;
  for (int c = 0; c < width_; ++c) {
    const auto& col = columns_[static_cast<std::size_t>(c)];
    a.bits.push_back(col.size() >= 1 ? col[0] : net_.const0());
    b.bits.push_back(col.size() >= 2 ? col[1] : net_.const0());
  }
  // If nothing needs propagating (every column <= 1 bit), skip the CPA.
  bool b_zero = true;
  for (NetId bit : b.bits) {
    if (bit != net_.const0()) b_zero = false;
  }
  if (b_zero) return a;
  return cpa(net_, arch, a, b, net_.const0());
}

}  // namespace dpmerge::synth
