#pragma once

#include <string>

#include "dpmerge/netlist/attribution.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/synth/flow.h"

namespace dpmerge::synth {

/// Everything `dpmerge-explain` knows about one flow run on one design:
/// the synthesis result (with its DecisionLog and owner-tagged netlist),
/// the STA report, the worst path re-expressed as per-owner delay bills,
/// and the per-decision delay/area ledger derived from all of it.
struct Explanation {
  FlowResult result;
  netlist::TimingReport timing;
  netlist::PathAttribution attribution;
  obs::prov::Ledger ledger;
};

/// Runs `flow` on `g`, analyses timing with `lib`, and builds the ledger:
/// the one-call provenance pipeline (DFG -> decisions -> cluster -> gates
/// -> worst path -> per-decision delay/area).
Explanation explain_flow(const dfg::Graph& g, Flow flow,
                         const netlist::CellLibrary& lib,
                         const SynthOptions& opt = {});

/// Builds the per-decision ledger for an already-run flow (shared by
/// explain_flow and the bench harnesses, which run STA themselves anyway).
/// Entry delays sum to `timing.longest_path_ns` within rounding.
obs::prov::Ledger build_ledger(const FlowResult& fr,
                               const netlist::CellLibrary& lib,
                               const netlist::TimingReport& timing);

/// Copies the `n` largest ledger entries by delay contribution into
/// `rep.top_decisions` (the FlowReport roll-up serialised by --stats-json).
void attach_top_decisions(obs::FlowReport& rep, const obs::prov::Ledger& ledger,
                          int n = 3);

/// Flow-vs-flow decision diff: every DFG node on which the two flows'
/// final verdicts (or firing rules) differ, with the worst-path delay each
/// flow bills to it. Sorted by the larger of the two bills, descending.
obs::prov::LedgerDiff diff_explanations(const Explanation& a,
                                        const Explanation& b);

/// Graphviz DOT of the synthesised DFG: nodes coloured by cluster, cluster
/// roots labelled with their deciding rule, and the owners of worst-path
/// delay outlined in red with their billed nanoseconds.
std::string provenance_dot(const Explanation& e);

}  // namespace dpmerge::synth
