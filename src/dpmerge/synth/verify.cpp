#include "dpmerge/synth/verify.h"

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "dpmerge/netlist/packed_sim.h"
#include "dpmerge/netlist/sim.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::synth {

using dfg::Graph;
using netlist::Netlist;
using netlist::PackedSimulator;
using netlist::Simulator;

namespace {

/// Name-resolved bus bindings between a DFG and a netlist, computed once
/// per verification run instead of once per trial.
struct Bindings {
  std::vector<dfg::NodeId> g_inputs;
  std::vector<dfg::NodeId> g_outputs;
  /// For net input bus i: index into `g_inputs` supplying its stimulus.
  std::vector<std::size_t> in_of_bus;
  /// For DFG output j: net output bus index, or -1 if the netlist has no
  /// bus of that name (reported as a mismatch, like the scalar oracle).
  std::vector<int> bus_of_out;
};

Bindings resolve(const Netlist& net, const Graph& g) {
  Bindings b;
  b.g_inputs = g.inputs();
  b.g_outputs = g.outputs();

  b.in_of_bus.resize(net.inputs().size());
  for (std::size_t i = 0; i < net.inputs().size(); ++i) {
    bool found = false;
    for (std::size_t k = 0; k < b.g_inputs.size(); ++k) {
      if (g.name(b.g_inputs[k]) == net.inputs()[i].name) {
        b.in_of_bus[i] = k;
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("missing stimulus for input '" +
                                  net.inputs()[i].name + "'");
    }
  }

  b.bus_of_out.assign(b.g_outputs.size(), -1);
  for (std::size_t j = 0; j < b.g_outputs.size(); ++j) {
    const std::string& name = g.name(b.g_outputs[j]);
    for (std::size_t i = 0; i < net.outputs().size(); ++i) {
      if (net.outputs()[i].name == name) {
        b.bus_of_out[j] = static_cast<int>(i);
        break;
      }
    }
  }
  return b;
}

void fill_mismatch(const Graph& g, const Bindings& bind, std::size_t out_idx,
                   const BitVector& expect, const BitVector* got,
                   std::string* why) {
  if (!why) return;
  std::ostringstream os;
  os << "output '" << g.name(bind.g_outputs[out_idx])
     << "': dfg=" << expect.to_string() << " netlist="
     << (got ? got->to_string() : std::string("<missing>"));
  *why = os.str();
}

/// The corner patterns every run starts with: all-zeros and all-ones.
std::vector<std::vector<BitVector>> corner_stimuli(const Graph& g,
                                                   const Bindings& bind) {
  std::vector<BitVector> zeros, ones;
  for (dfg::NodeId id : bind.g_inputs) {
    BitVector z(g.node(id).width);
    zeros.push_back(z);
    ones.push_back(z.bit_not());
  }
  return {std::move(zeros), std::move(ones)};
}

}  // namespace

bool verify_netlist(const Netlist& net, const Graph& g, int trials, Rng& rng,
                    std::string* why) {
  obs::Span span("verify.netlist");
  dfg::Evaluator ev(g);
  PackedSimulator sim(net);
  const Bindings bind = resolve(net, g);

  // Checks one batch of <= 64 stimulus sets (each in g.inputs() order):
  // one packed netlist sweep, one scalar DFG evaluation per lane.
  auto check_batch =
      [&](const std::vector<std::vector<BitVector>>& stims) -> bool {
    obs::stat_add("verify.batches");
    obs::stat_add("verify.lanes", static_cast<std::int64_t>(stims.size()));
    std::vector<std::vector<BitVector>> bus_stims(stims.size());
    for (std::size_t L = 0; L < stims.size(); ++L) {
      bus_stims[L].reserve(bind.in_of_bus.size());
      for (std::size_t pos : bind.in_of_bus) {
        bus_stims[L].push_back(stims[L][pos]);
      }
    }
    const auto got = sim.run_batch(bus_stims);
    for (std::size_t L = 0; L < stims.size(); ++L) {
      const auto expect = ev.run_outputs(stims[L]);
      for (std::size_t j = 0; j < bind.g_outputs.size(); ++j) {
        const int bus = bind.bus_of_out[j];
        const BitVector* v =
            bus >= 0 ? &got[L][static_cast<std::size_t>(bus)] : nullptr;
        if (!v || *v != expect[j]) {
          fill_mismatch(g, bind, j, expect[j], v, why);
          return false;
        }
      }
    }
    return true;
  };

  auto stims = corner_stimuli(g, bind);
  int done = 0;
  for (;;) {
    while (done < trials &&
           stims.size() < static_cast<std::size_t>(PackedSimulator::kLanes)) {
      stims.push_back(ev.random_inputs(rng));
      ++done;
    }
    if (stims.empty()) break;
    if (!check_batch(stims)) return false;
    stims.clear();
    if (done == trials) break;
  }
  return true;
}

bool verify_netlist_scalar(const Netlist& net, const Graph& g, int trials,
                           Rng& rng, std::string* why) {
  obs::Span span("verify.netlist_scalar");
  dfg::Evaluator ev(g);
  Simulator sim(net);
  const Bindings bind = resolve(net, g);

  auto check = [&](const std::vector<BitVector>& stim) -> bool {
    std::vector<BitVector> bus_stim;
    bus_stim.reserve(bind.in_of_bus.size());
    for (std::size_t pos : bind.in_of_bus) bus_stim.push_back(stim[pos]);
    const auto expect = ev.run_outputs(stim);
    const auto got = sim.run(bus_stim);
    for (std::size_t j = 0; j < bind.g_outputs.size(); ++j) {
      const int bus = bind.bus_of_out[j];
      const BitVector* v =
          bus >= 0 ? &got[static_cast<std::size_t>(bus)] : nullptr;
      if (!v || *v != expect[j]) {
        fill_mismatch(g, bind, j, expect[j], v, why);
        return false;
      }
    }
    return true;
  };

  for (const auto& stim : corner_stimuli(g, bind)) {
    if (!check(stim)) return false;
  }
  for (int t = 0; t < trials; ++t) {
    if (!check(ev.random_inputs(rng))) return false;
  }
  return true;
}

}  // namespace dpmerge::synth
