#include "dpmerge/synth/verify.h"

#include <map>
#include <sstream>

#include "dpmerge/netlist/sim.h"

namespace dpmerge::synth {

using dfg::Graph;
using netlist::Netlist;
using netlist::Simulator;

bool verify_netlist(const Netlist& net, const Graph& g, int trials, Rng& rng,
                    std::string* why) {
  dfg::Evaluator ev(g);
  Simulator sim(net);
  const auto g_inputs = g.inputs();
  const auto g_outputs = g.outputs();

  auto check = [&](const std::vector<BitVector>& stim) {
    std::map<std::string, BitVector> by_name;
    for (std::size_t i = 0; i < g_inputs.size(); ++i) {
      by_name[g.node(g_inputs[i]).name] = stim[i];
    }
    const auto expect = ev.run_outputs(stim);
    const auto got = sim.run(by_name);
    for (std::size_t i = 0; i < g_outputs.size(); ++i) {
      const std::string& name = g.node(g_outputs[i]).name;
      const auto it = got.find(name);
      if (it == got.end() || it->second != expect[i]) {
        if (why) {
          std::ostringstream os;
          os << "output '" << name << "': dfg=" << expect[i].to_string()
             << " netlist="
             << (it == got.end() ? std::string("<missing>")
                                 : it->second.to_string());
          *why = os.str();
        }
        return false;
      }
    }
    return true;
  };

  {
    std::vector<BitVector> zeros, ones;
    for (dfg::NodeId id : g_inputs) {
      BitVector z(g.node(id).width);
      zeros.push_back(z);
      ones.push_back(z.bit_not());
    }
    if (!check(zeros) || !check(ones)) return false;
  }
  for (int t = 0; t < trials; ++t) {
    if (!check(ev.random_inputs(rng))) return false;
  }
  return true;
}

}  // namespace dpmerge::synth
