#include "dpmerge/synth/cpa.h"

#include <cassert>

#include "dpmerge/obs/obs.h"

namespace dpmerge::synth {

using netlist::NetId;
using netlist::Netlist;
using netlist::Signal;

std::string_view to_string(AdderArch a) {
  switch (a) {
    case AdderArch::Ripple:
      return "ripple";
    case AdderArch::KoggeStone:
      return "kogge-stone";
    case AdderArch::BrentKung:
      return "brent-kung";
    case AdderArch::CarrySelect:
      return "carry-select";
  }
  return "?";
}

Signal ripple_add(Netlist& n, const Signal& a, const Signal& b, NetId cin) {
  assert(a.width() == b.width() && a.width() >= 1);
  Signal s;
  NetId carry = cin;
  for (int i = 0; i < a.width(); ++i) {
    auto [sum, cout] = n.full_adder(a.bit(i), b.bit(i), carry);
    s.bits.push_back(sum);
    carry = cout;  // the final carry out is discarded (mod 2^W)
  }
  return s;
}

Signal kogge_stone_add(Netlist& n, const Signal& a, const Signal& b,
                       NetId cin) {
  assert(a.width() == b.width() && a.width() >= 1);
  const int w = a.width();
  std::vector<NetId> p(static_cast<std::size_t>(w));
  std::vector<NetId> g(static_cast<std::size_t>(w));
  for (int i = 0; i < w; ++i) {
    p[static_cast<std::size_t>(i)] = n.xor2(a.bit(i), b.bit(i));
    g[static_cast<std::size_t>(i)] = n.and2(a.bit(i), b.bit(i));
  }
  // Fold the carry-in into bit 0's generate.
  if (cin != n.const0()) {
    g[0] = n.or2(g[0], n.and2(p[0], cin));
  }
  // Parallel-prefix combine: after the sweep, g[i] is the carry out of
  // position i.
  for (int d = 1; d < w; d <<= 1) {
    std::vector<NetId> gn = g, pn = p;
    for (int i = d; i < w; ++i) {
      gn[static_cast<std::size_t>(i)] =
          n.or2(g[static_cast<std::size_t>(i)],
                n.and2(p[static_cast<std::size_t>(i)],
                       g[static_cast<std::size_t>(i - d)]));
      pn[static_cast<std::size_t>(i)] =
          n.and2(p[static_cast<std::size_t>(i)],
                 p[static_cast<std::size_t>(i - d)]);
    }
    g = std::move(gn);
    p = std::move(pn);
  }
  Signal s;
  s.bits.push_back(cin == n.const0() ? n.xor2(a.bit(0), b.bit(0))
                                     : n.xor2(n.xor2(a.bit(0), b.bit(0)), cin));
  for (int i = 1; i < w; ++i) {
    s.bits.push_back(n.xor2(n.xor2(a.bit(i), b.bit(i)),
                            g[static_cast<std::size_t>(i - 1)]));
  }
  return s;
}

Signal brent_kung_add(Netlist& n, const Signal& a, const Signal& b,
                      NetId cin) {
  assert(a.width() == b.width() && a.width() >= 1);
  const int w = a.width();
  std::vector<NetId> p(static_cast<std::size_t>(w));
  std::vector<NetId> g(static_cast<std::size_t>(w));
  std::vector<NetId> p0(static_cast<std::size_t>(w));  // raw propagate
  for (int i = 0; i < w; ++i) {
    p0[static_cast<std::size_t>(i)] = n.xor2(a.bit(i), b.bit(i));
    p[static_cast<std::size_t>(i)] = p0[static_cast<std::size_t>(i)];
    g[static_cast<std::size_t>(i)] = n.and2(a.bit(i), b.bit(i));
  }
  if (cin != n.const0()) {
    g[0] = n.or2(g[0], n.and2(p[0], cin));
  }
  auto combine = [&](int i, int j) {
    g[static_cast<std::size_t>(i)] =
        n.or2(g[static_cast<std::size_t>(i)],
              n.and2(p[static_cast<std::size_t>(i)],
                     g[static_cast<std::size_t>(j)]));
    p[static_cast<std::size_t>(i)] = n.and2(p[static_cast<std::size_t>(i)],
                                            p[static_cast<std::size_t>(j)]);
  };
  // Up-sweep: power-of-two prefixes.
  int dmax = 1;
  for (int d = 1; d < w; d <<= 1) {
    for (int i = 2 * d - 1; i < w; i += 2 * d) combine(i, i - d);
    dmax = d;
  }
  // Down-sweep: fill in the remaining prefixes.
  for (int d = dmax; d >= 1; d >>= 1) {
    for (int i = 3 * d - 1; i < w; i += 2 * d) combine(i, i - d);
  }
  Signal s;
  s.bits.push_back(cin == n.const0() ? p0[0] : n.xor2(p0[0], cin));
  for (int i = 1; i < w; ++i) {
    s.bits.push_back(n.xor2(p0[static_cast<std::size_t>(i)],
                            g[static_cast<std::size_t>(i - 1)]));
  }
  return s;
}

Signal carry_select_add(Netlist& n, const Signal& a, const Signal& b,
                        NetId cin, int block) {
  assert(a.width() == b.width() && a.width() >= 1 && block >= 1);
  const int w = a.width();
  Signal s;
  NetId carry = cin;
  for (int lo = 0; lo < w; lo += block) {
    const int hi = std::min(lo + block, w);
    Signal ba, bb;
    for (int i = lo; i < hi; ++i) {
      ba.bits.push_back(a.bit(i));
      bb.bits.push_back(b.bit(i));
    }
    if (lo == 0) {
      // First block rippled directly from cin.
      NetId c = carry;
      for (int i = 0; i < ba.width(); ++i) {
        auto [sum, cout] = n.full_adder(ba.bit(i), bb.bit(i), c);
        s.bits.push_back(sum);
        c = cout;
      }
      carry = c;
      continue;
    }
    // Two speculative ripples (cin = 0 and cin = 1), then select.
    NetId c0 = n.const0(), c1 = n.const1();
    std::vector<NetId> s0, s1;
    for (int i = 0; i < ba.width(); ++i) {
      auto [sum0, cout0] = n.full_adder(ba.bit(i), bb.bit(i), c0);
      auto [sum1, cout1] = n.full_adder(ba.bit(i), bb.bit(i), c1);
      s0.push_back(sum0);
      s1.push_back(sum1);
      c0 = cout0;
      c1 = cout1;
    }
    for (int i = 0; i < ba.width(); ++i) {
      s.bits.push_back(n.mux2(s0[static_cast<std::size_t>(i)],
                              s1[static_cast<std::size_t>(i)], carry));
    }
    carry = n.mux2(c0, c1, carry);
  }
  return s;
}

Signal cpa(Netlist& n, AdderArch arch, const Signal& a, const Signal& b,
           NetId cin) {
  obs::stat_add("synth.cpa.count");
  obs::stat_add("synth.cpa.bits", a.width());
  switch (arch) {
    case AdderArch::Ripple:
      return ripple_add(n, a, b, cin);
    case AdderArch::KoggeStone:
      return kogge_stone_add(n, a, b, cin);
    case AdderArch::BrentKung:
      return brent_kung_add(n, a, b, cin);
    case AdderArch::CarrySelect:
      return carry_select_add(n, a, b, cin);
  }
  return ripple_add(n, a, b, cin);
}

}  // namespace dpmerge::synth
