#pragma once

#include <vector>

#include "dpmerge/netlist/netlist.h"
#include "dpmerge/synth/cpa.h"

namespace dpmerge::synth {

/// Carry-save reduction of a multiset of W-bit addend rows (the CSA-tree /
/// Wallace-tree backend of operator merging, per [2][4][5] of the paper):
/// bits accumulate per column; 3:2 and 2:2 compressors reduce every column
/// to at most two bits; a single final carry-propagate adder produces the
/// sum. All arithmetic is modulo 2^W (carries out of column W-1 drop).
///
/// Rows may contain constant nets: the netlist's folding helpers collapse
/// compressors with constant inputs, so constants (negation "+1" correction
/// terms, zero-extension fill) are nearly free.
class CsaTree {
 public:
  CsaTree(netlist::Netlist& n, int width);

  /// Adds a W-bit row; `negative` rows contribute their two's complement
  /// (every bit inverted plus a +1 correction in column 0).
  void add_row(const netlist::Signal& row, bool negative = false);

  /// Adds a single bit at the given column.
  void add_bit(int column, netlist::NetId bit);

  /// Adds an integer constant (its set bits land in the matching columns).
  void add_constant(const BitVector& v);

  int rows_added() const { return rows_; }

  /// Compresses to two rows and returns the final CPA sum. The tree is
  /// consumed; the object must not be reused afterwards.
  netlist::Signal reduce_and_sum(AdderArch arch);

  /// Number of compression stages the last `reduce_and_sum` used (the CSA
  /// tree depth — reported by the ablation bench).
  int stages() const { return stages_; }

 private:
  netlist::Netlist& net_;
  int width_;
  int rows_ = 0;
  int stages_ = 0;
  std::vector<std::vector<netlist::NetId>> columns_;
};

}  // namespace dpmerge::synth
