#pragma once

#include <string_view>

#include "dpmerge/cluster/clusterer.h"
#include "dpmerge/dfg/graph.h"
#include "dpmerge/netlist/netlist.h"
#include "dpmerge/obs/flow_report.h"
#include "dpmerge/obs/provenance.h"
#include "dpmerge/synth/cpa.h"

namespace dpmerge::synth {

/// The three synthesis flows compared in Section 7's tables.
enum class Flow {
  NoMerge,   ///< traditional: every operator synthesised standalone
  OldMerge,  ///< leakage-of-bits clustering, no width transformations
  NewMerge,  ///< the paper: RP/IC normalisation + iterative maximal merging
};

std::string_view to_string(Flow f);

struct SynthOptions {
  AdderArch adder = AdderArch::KoggeStone;
  /// Radix-4 Booth recoding for multiplier partial products (about half the
  /// CSA rows per product).
  bool booth_multipliers = false;
  /// Parallel width for the clustering stages (ClusterOptions::threads):
  /// 1 = serial, 0 = one thread per core, n = at most n. Any setting yields
  /// bit-identical netlists and DecisionLogs (DESIGN.md §11).
  int threads = 1;
  /// NewMerge only: run `transform::shrink_widths` (the absint-driven
  /// narrowing pass, DESIGN.md §13) on the graph before normalisation and
  /// clustering. Every shrink batch is discharged by differential
  /// simulation and, within budget, a BDD proof; its decisions land in the
  /// flow's DecisionLog under the shrink.* rules.
  bool absint_shrink = false;
};

struct FlowResult {
  dfg::Graph graph;  ///< the synthesised DFG (width-normalised for NewMerge)
  cluster::Partition partition;
  int cluster_iterations = 1;
  netlist::Netlist net;
  /// Per-stage observability breakdown (times, merge decisions, CSA/CPA
  /// structure, cell histogram). Always populated; near-free to fill when
  /// the obs subsystem is compiled out (times/stats are then zero/empty).
  obs::FlowReport report;
  /// Every merge decision the clusterer took (per-edge evidence + final
  /// node verdicts), recorded while the flow ran. Together with the
  /// netlist's gate owner tags this is the provenance chain the ledger and
  /// `dpmerge-explain` are built from. Empty when obs is compiled out.
  obs::prov::DecisionLog decisions;
};

/// Runs a complete flow: (transform) -> cluster -> netlist. The netlist's
/// input/output buses are named after the DFG's input/output nodes, so the
/// result can be simulated against the DFG interpreter directly.
FlowResult run_flow(const dfg::Graph& g, Flow flow,
                    const SynthOptions& opt = {});

/// The new-merge front-end in isolation: width normalisation and iterative
/// maximal clustering, with the Huffman refinements fed back into further
/// width pruning until a fixpoint (mutates `g`). Returns the final
/// clustering. When `fs` is given, the normalisation and clustering rounds
/// are reported as "normalize"/"cluster" stages. `threads` is forwarded to
/// ClusterOptions::threads (bit-identical results at any width).
cluster::ClusterResult prepare_new_merge(dfg::Graph& g,
                                         obs::FlowScope* fs = nullptr,
                                         int threads = 1);

/// Fills a FlowReport's structural roll-ups from a finished flow: merge
/// decisions (arithmetic operators absorbed into a consumer's cluster),
/// CSA-tree rows and CPA counts (from the synth stage's sink counters), and
/// the netlist's cell histogram. Shared by `run_flow` and the ablation
/// bench's hand-driven flows.
void finalize_flow_report(obs::FlowReport& rep, const dfg::Graph& g,
                          const cluster::Partition& p,
                          const netlist::Netlist& net,
                          const obs::StatSink& sink);

/// Synthesises a DFG given an existing partition (the flows above all land
/// here; exposed for custom clusterings and the ablation bench).
netlist::Netlist synthesize_partition(const dfg::Graph& g,
                                      const cluster::Partition& p,
                                      const analysis::InfoAnalysis& ia,
                                      const SynthOptions& opt);

}  // namespace dpmerge::synth
