#include "dpmerge/synth/flow.h"

#include <cassert>

#include "dpmerge/synth/cluster_synth.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge::synth {

using analysis::InfoAnalysis;
using cluster::Partition;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;
using netlist::Netlist;
using netlist::Signal;

std::string_view to_string(Flow f) {
  switch (f) {
    case Flow::NoMerge:
      return "no-merge";
    case Flow::OldMerge:
      return "old-merge";
    case Flow::NewMerge:
      return "new-merge";
  }
  return "?";
}

Netlist synthesize_partition(const Graph& g, const Partition& p,
                             const InfoAnalysis& ia,
                             const SynthOptions& opt) {
  Netlist net;
  std::vector<Signal> sig(static_cast<std::size_t>(g.node_count()));

  for (NodeId id : g.topo_order()) {
    const Node& n = g.node(id);
    auto& s = sig[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input: {
        for (int i = 0; i < n.width; ++i) s.bits.push_back(net.new_net());
        net.add_input(n.name, s);
        break;
      }
      case OpKind::Const:
        s = net.constant_signal(n.value);
        break;
      case OpKind::Output:
        s = operand_signal(net, g, n.in[0], sig);
        net.add_output(n.name, s);
        break;
      case OpKind::Extension:
        // Pure wiring: truncation selects bits, extension replicates the
        // top net or ties zeros.
        s = operand_signal(net, g, n.in[0], sig);
        break;
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        // Comparators are 1-bit cluster boundaries synthesised standalone.
        const Signal a = operand_signal(net, g, n.in[0], sig);
        const Signal b2 = operand_signal(net, g, n.in[1], sig);
        netlist::NetId r;
        if (n.kind == OpKind::Eq) {
          // Balanced OR tree over per-bit differences, then invert.
          std::vector<netlist::NetId> diffs;
          for (int i = 0; i < n.width; ++i) {
            diffs.push_back(net.xor2(a.bit(i), b2.bit(i)));
          }
          while (diffs.size() > 1) {
            std::vector<netlist::NetId> nxt;
            for (std::size_t i = 0; i + 1 < diffs.size(); i += 2) {
              nxt.push_back(net.or2(diffs[i], diffs[i + 1]));
            }
            if (diffs.size() % 2) nxt.push_back(diffs.back());
            diffs = std::move(nxt);
          }
          r = net.inv(diffs[0]);
        } else {
          // a < b  <=>  sign of the (w+1)-bit difference a - b.
          const Sign ext =
              n.kind == OpKind::LtS ? Sign::Signed : Sign::Unsigned;
          const Signal ae = net.resize(a, n.width + 1, ext);
          const Signal be = net.resize(b2, n.width + 1, ext);
          const Signal diff =
              cpa(net, opt.adder, ae, net.invert(be), net.const1());
          r = diff.msb();
        }
        s.bits.assign(static_cast<std::size_t>(n.width), net.const0());
        s.bits[0] = r;
        break;
      }
      default: {
        // Arithmetic operators materialise only at cluster roots; interior
        // members are absorbed into the root's CSA tree.
        const int ci = p.index_of(id);
        assert(ci >= 0);
        const auto& c = p.clusters[static_cast<std::size_t>(ci)];
        if (c.root == id) {
          s = synthesize_cluster(net, g, c, ia, sig, opt.adder,
                                 opt.booth_multipliers);
        }
        break;
      }
    }
  }
  return net;
}

cluster::ClusterResult prepare_new_merge(Graph& g) {
  transform::normalize_widths(g);
  auto cr = cluster::cluster_maximal(g);
  // Feed the rebalanced cluster-output bounds (Section 5.2) back into the
  // width transformations: a tighter bound can shrink the cluster root (and
  // everything required precision then caps), which can in turn merge more.
  for (int round = 0; round < 4; ++round) {
    const auto stats = transform::normalize_widths(g, 8, &cr.refinements);
    if (!stats.changed()) break;
    auto next = cluster::cluster_maximal(g);
    // Carry earlier refinements forward (they remain valid claims).
    for (std::size_t i = 0; i < cr.refinements.size(); ++i) {
      if (!cr.refinements[i]) continue;
      if (i < next.refinements.size()) {
        next.refinements[i] = next.refinements[i]
                                  ? analysis::ic_meet(*next.refinements[i],
                                                      *cr.refinements[i])
                                  : cr.refinements[i];
      }
    }
    next.iterations += cr.iterations;
    cr = std::move(next);
  }
  return cr;
}

FlowResult run_flow(const Graph& g, Flow flow, const SynthOptions& opt) {
  FlowResult res;
  res.graph = g;
  InfoAnalysis ia;
  switch (flow) {
    case Flow::NoMerge:
      res.partition = cluster::cluster_none(res.graph);
      ia = analysis::compute_info_content(res.graph);
      break;
    case Flow::OldMerge:
      res.partition = cluster::cluster_leakage(res.graph);
      ia = analysis::compute_info_content(res.graph);
      break;
    case Flow::NewMerge: {
      auto cr = prepare_new_merge(res.graph);
      res.partition = std::move(cr.partition);
      res.cluster_iterations = cr.iterations;
      ia = std::move(cr.info);
      break;
    }
  }
  res.net = synthesize_partition(res.graph, res.partition, ia, opt);
  return res;
}

}  // namespace dpmerge::synth
