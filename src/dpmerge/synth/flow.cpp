#include "dpmerge/synth/flow.h"

#include <cassert>
#include <optional>

#include "dpmerge/check/check.h"
#include "dpmerge/synth/cluster_synth.h"
#include "dpmerge/transform/shrink_widths.h"
#include "dpmerge/transform/width_prune.h"

namespace dpmerge::synth {

using analysis::InfoAnalysis;
using cluster::Partition;
using dfg::Graph;
using dfg::Node;
using dfg::NodeId;
using dfg::OpKind;
using netlist::Netlist;
using netlist::Signal;

std::string_view to_string(Flow f) {
  switch (f) {
    case Flow::NoMerge:
      return "no-merge";
    case Flow::OldMerge:
      return "old-merge";
    case Flow::NewMerge:
      return "new-merge";
  }
  return "?";
}

Netlist synthesize_partition(const Graph& g, const Partition& p,
                             const InfoAnalysis& ia,
                             const SynthOptions& opt) {
  Netlist net;
  std::vector<Signal> sig(static_cast<std::size_t>(g.node_count()));

  for (NodeId id : g.freeze().topo) {
    const Node& n = g.node(id);
    // Provenance: every gate created while synthesising this node's turn is
    // owned by it (cluster roots own their whole CSA tree + CPA). Side
    // metadata only — never changes the emitted structure.
    net.set_provenance_owner(id.value);
    auto& s = sig[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input: {
        for (int i = 0; i < n.width; ++i) s.bits.push_back(net.new_net());
        net.add_input(g.name(n), s);
        break;
      }
      case OpKind::Const:
        s = net.constant_signal(n.value);
        break;
      case OpKind::Output:
        s = operand_signal(net, g, n.in[0], sig);
        net.add_output(g.name(n), s);
        break;
      case OpKind::Extension:
        // Pure wiring: truncation selects bits, extension replicates the
        // top net or ties zeros.
        s = operand_signal(net, g, n.in[0], sig);
        break;
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        // Comparators are 1-bit cluster boundaries synthesised standalone.
        const Signal a = operand_signal(net, g, n.in[0], sig);
        const Signal b2 = operand_signal(net, g, n.in[1], sig);
        netlist::NetId r;
        if (n.kind == OpKind::Eq) {
          // Balanced OR tree over per-bit differences, then invert.
          std::vector<netlist::NetId> diffs;
          for (int i = 0; i < n.width; ++i) {
            diffs.push_back(net.xor2(a.bit(i), b2.bit(i)));
          }
          while (diffs.size() > 1) {
            std::vector<netlist::NetId> nxt;
            for (std::size_t i = 0; i + 1 < diffs.size(); i += 2) {
              nxt.push_back(net.or2(diffs[i], diffs[i + 1]));
            }
            if (diffs.size() % 2) nxt.push_back(diffs.back());
            diffs = std::move(nxt);
          }
          r = net.inv(diffs[0]);
        } else {
          // a < b  <=>  sign of the (w+1)-bit difference a - b.
          const Sign ext =
              n.kind == OpKind::LtS ? Sign::Signed : Sign::Unsigned;
          const Signal ae = net.resize(a, n.width + 1, ext);
          const Signal be = net.resize(b2, n.width + 1, ext);
          const Signal diff =
              cpa(net, opt.adder, ae, net.invert(be), net.const1());
          r = diff.msb();
        }
        s.bits.assign(static_cast<std::size_t>(n.width), net.const0());
        s.bits[0] = r;
        break;
      }
      default: {
        // Arithmetic operators materialise only at cluster roots; interior
        // members are absorbed into the root's CSA tree.
        const int ci = p.index_of(id);
        assert(ci >= 0);
        const auto& c = p.clusters[static_cast<std::size_t>(ci)];
        if (c.root == id) {
          s = synthesize_cluster(net, g, c, ia, sig, opt.adder,
                                 opt.booth_multipliers);
        }
        break;
      }
    }
  }
  net.set_provenance_owner(-1);
  return net;
}

cluster::ClusterResult prepare_new_merge(Graph& g, obs::FlowScope* fs,
                                         int threads) {
  auto stage = [&](const char* name) {
    if (fs) fs->begin_stage(name, g.node_count(), g.edge_count());
  };
  auto done = [&] {
    if (fs) fs->end_stage(g.node_count(), g.edge_count());
  };
  cluster::ClusterOptions copt;
  copt.threads = threads;

  stage("normalize");
  transform::normalize_widths(g);
  done();
  stage("cluster");
  auto cr = cluster::cluster_maximal(g, copt);
  done();
  // Feed the rebalanced cluster-output bounds (Section 5.2) back into the
  // width transformations: a tighter bound can shrink the cluster root (and
  // everything required precision then caps), which can in turn merge more.
  for (int round = 0; round < 4; ++round) {
    stage("normalize");
    const auto stats = transform::normalize_widths(g, 8, &cr.refinements);
    done();
    if (!stats.changed()) break;
    stage("cluster");
    auto next = cluster::cluster_maximal(g, copt);
    done();
    // Carry earlier refinements forward (they remain valid claims).
    for (std::size_t i = 0; i < cr.refinements.size(); ++i) {
      if (!cr.refinements[i]) continue;
      if (i < next.refinements.size()) {
        next.refinements[i] = next.refinements[i]
                                  ? analysis::ic_meet(*next.refinements[i],
                                                      *cr.refinements[i])
                                  : cr.refinements[i];
      }
    }
    next.iterations += cr.iterations;
    next.per_iteration.insert(next.per_iteration.begin(),
                              cr.per_iteration.begin(),
                              cr.per_iteration.end());
    cr = std::move(next);
  }
  return cr;
}

void finalize_flow_report(obs::FlowReport& rep, const Graph& g,
                          const Partition& p, const Netlist& net,
                          const obs::StatSink& sink) {
  int arith = 0;
  for (const Node& n : g.nodes()) {
    if (dfg::is_arith_operator(n.kind)) ++arith;
  }
  rep.merge_decisions = arith - p.num_clusters();
  rep.csa_rows = sink.get("synth.csa.rows");
  rep.cpa_count = sink.get("synth.cpa.count");
  rep.cells_by_type.clear();
  for (const netlist::Gate& gate : net.gates()) {
    ++rep.cells_by_type[std::string(netlist::to_string(gate.type))];
  }
}

FlowResult run_flow(const Graph& g, Flow flow, const SynthOptions& opt) {
  FlowResult res;
  res.graph = g;
  res.report.flow = std::string(to_string(flow));
  const bool checking = check::policy() != check::CheckPolicy::Off;
  res.report.check_policy = std::string(check::to_string(check::policy()));
  obs::Span span(flow == Flow::NewMerge   ? "flow.new-merge"
                 : flow == Flow::OldMerge ? "flow.old-merge"
                                          : "flow.no-merge");
  {
    obs::FlowScope fs(&res.report);
    // Decision provenance: every candidate merge the clusterer evaluates
    // for this flow lands in the result's log (compiled out with obs).
    obs::prov::DecisionScope decisions(&res.decisions);
    // RP for the post-cluster analysis lint; only NewMerge carries one out
    // of the clusterer, the fixed partitions get by with the IC lint alone.
    std::optional<analysis::RequiredPrecision> rp;
    InfoAnalysis ia;
    switch (flow) {
      case Flow::NoMerge:
        fs.begin_stage("cluster", res.graph.node_count(),
                       res.graph.edge_count());
        res.partition = cluster::cluster_none(res.graph);
        ia = analysis::compute_info_content(res.graph);
        fs.end_stage(res.graph.node_count(), res.graph.edge_count());
        break;
      case Flow::OldMerge:
        fs.begin_stage("cluster", res.graph.node_count(),
                       res.graph.edge_count());
        res.partition = cluster::cluster_leakage(res.graph);
        ia = analysis::compute_info_content(res.graph);
        fs.end_stage(res.graph.node_count(), res.graph.edge_count());
        break;
      case Flow::NewMerge: {
        if (opt.absint_shrink) {
          // Optional absint stage ahead of the paper's normalisation: it
          // only keeps verified batches, so the rest of the flow sees a
          // graph equivalent to the input.
          fs.begin_stage("shrink", res.graph.node_count(),
                         res.graph.edge_count());
          transform::shrink_widths(res.graph);
          fs.end_stage(res.graph.node_count(), res.graph.edge_count());
        }
        auto cr = prepare_new_merge(res.graph, &fs, opt.threads);
        res.partition = std::move(cr.partition);
        res.cluster_iterations = cr.iterations;
        res.report.cluster_iterations = cr.iterations;
        for (const auto& it : cr.per_iteration) {
          res.report.iterations.push_back(
              {it.clusters, it.merged_nodes, it.refined_roots});
        }
        ia = std::move(cr.info);
        rp = std::move(cr.rp);
        break;
      }
    }
    if (checking) {
      // Post-cluster boundary: the (possibly normalized) graph plus the
      // analysis results the synthesizer is about to consume.
      fs.begin_stage("check", res.graph.node_count(), res.graph.edge_count());
      check::enforce(res.graph, "flow.cluster");
      check::enforce_analyses(res.graph, ia, rp ? &*rp : nullptr,
                              "flow.analyses");
      fs.end_stage(res.graph.node_count(), res.graph.edge_count());
    }
    fs.begin_stage("synth", res.graph.node_count(), res.graph.edge_count());
    res.net = synthesize_partition(res.graph, res.partition, ia, opt);
    fs.end_stage(res.net.gate_count(), res.net.net_count());
    if (checking) {
      // Post-synth boundary: the emitted netlist (resumes the check stage).
      fs.begin_stage("check", res.net.gate_count(), res.net.net_count());
      check::enforce(res.net, "flow.synth");
      fs.end_stage(res.net.gate_count(), res.net.net_count());
    }
    finalize_flow_report(res.report, res.graph, res.partition, res.net,
                         fs.sink());
  }  // ~FlowScope stamps total_us
  return res;
}

}  // namespace dpmerge::synth
