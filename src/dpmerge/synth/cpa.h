#pragma once

#include "dpmerge/netlist/netlist.h"

namespace dpmerge::synth {

/// Final carry-propagate adder architectures. Every cluster (and every
/// standalone operator in the no-merging flow) ends in exactly one of
/// these; minimising their count is the point of operator merging.
enum class AdderArch {
  Ripple,       ///< area-lean, O(W) carry chain
  KoggeStone,   ///< parallel-prefix, O(log W) depth, most wiring/cells
  BrentKung,    ///< parallel-prefix, ~2 log W depth, far fewer cells
  CarrySelect,  ///< blocks of duplicated ripple + mux select, O(W/k + k)
};

std::string_view to_string(AdderArch a);

/// W-bit sum (a + b + cin) mod 2^W; operands must share width W >= 1.
netlist::Signal ripple_add(netlist::Netlist& n, const netlist::Signal& a,
                           const netlist::Signal& b,
                           netlist::NetId cin);

netlist::Signal kogge_stone_add(netlist::Netlist& n,
                                const netlist::Signal& a,
                                const netlist::Signal& b,
                                netlist::NetId cin);

netlist::Signal brent_kung_add(netlist::Netlist& n,
                               const netlist::Signal& a,
                               const netlist::Signal& b,
                               netlist::NetId cin);

netlist::Signal carry_select_add(netlist::Netlist& n,
                                 const netlist::Signal& a,
                                 const netlist::Signal& b,
                                 netlist::NetId cin, int block = 4);

netlist::Signal cpa(netlist::Netlist& n, AdderArch arch,
                    const netlist::Signal& a, const netlist::Signal& b,
                    netlist::NetId cin);

}  // namespace dpmerge::synth
