#include "dpmerge/synth/explain.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace dpmerge::synth {

using netlist::PathAttribution;
using netlist::TimingReport;
using obs::prov::Decision;
using obs::prov::DecisionId;
using obs::prov::Ledger;
using obs::prov::LedgerDiff;
using obs::prov::LedgerEntry;

namespace {

std::string owner_label(const dfg::Graph& g, int owner) {
  if (owner < 0 || owner >= g.node_count()) return "(untagged)";
  const dfg::Node& n = g.node(dfg::NodeId{owner});
  std::string s(dfg::to_string(n.kind));
  s += "#" + std::to_string(owner);
  if (!g.name(n).empty()) s += " '" + g.name(n) + "'";
  return s;
}

}  // namespace

Ledger build_ledger(const FlowResult& fr, const netlist::CellLibrary& lib,
                    const TimingReport& timing) {
  Ledger ledger;
  ledger.design = fr.report.design;
  ledger.flow = fr.report.flow;
  ledger.total_delay_ns = timing.longest_path_ns;

  const PathAttribution attr =
      netlist::attribute_critical_path(fr.net, timing);
  const auto census = netlist::census_by_owner(fr.net, lib);

  // One entry per owner seen in either the census (area) or the worst path
  // (delay); owner -1 collects untagged gates (e.g. post-synthesis buffers).
  std::set<int> owners;
  for (const auto& [o, c] : census) owners.insert(o);
  for (const auto& [o, d] : attr.delay_by_owner) owners.insert(o);

  for (int o : owners) {
    LedgerEntry e;
    e.node = o;
    e.label = owner_label(fr.graph, o);
    e.decision = fr.decisions.final_for_node(o);
    if (e.decision.valid()) {
      const Decision& d = fr.decisions.decision(e.decision);
      e.rule = d.rule;
      e.verdict = std::string(obs::prov::to_string(d.verdict));
    }
    if (auto it = attr.delay_by_owner.find(o);
        it != attr.delay_by_owner.end()) {
      e.delay_ns = it->second;
    }
    if (auto it = attr.path_gates_by_owner.find(o);
        it != attr.path_gates_by_owner.end()) {
      e.path_gates = it->second;
    }
    if (auto it = census.find(o); it != census.end()) {
      e.gates = it->second.gates;
      e.area = it->second.area;
    }
    ledger.attributed_ns += e.delay_ns;
    ledger.total_area += e.area;
    ledger.entries.push_back(std::move(e));
  }
  std::sort(ledger.entries.begin(), ledger.entries.end(),
            [](const LedgerEntry& a, const LedgerEntry& b) {
              if (a.delay_ns != b.delay_ns) return a.delay_ns > b.delay_ns;
              return a.node < b.node;
            });
  return ledger;
}

Explanation explain_flow(const dfg::Graph& g, Flow flow,
                         const netlist::CellLibrary& lib,
                         const SynthOptions& opt) {
  Explanation e;
  e.result = run_flow(g, flow, opt);
  const netlist::Sta sta(lib);
  e.timing = sta.analyze(e.result.net);
  e.attribution = netlist::attribute_critical_path(e.result.net, e.timing);
  e.ledger = build_ledger(e.result, lib, e.timing);
  return e;
}

void attach_top_decisions(obs::FlowReport& rep, const Ledger& ledger, int n) {
  rep.top_decisions.clear();
  for (const LedgerEntry& e : ledger.entries) {
    if (static_cast<int>(rep.top_decisions.size()) >= n) break;
    if (e.delay_ns <= 0.0) break;  // entries are sorted by delay, desc
    obs::DecisionSummary s;
    s.label = e.label;
    if (!e.rule.empty()) s.label += " [" + e.rule + "]";
    s.delay_ns = e.delay_ns;
    s.share =
        ledger.total_delay_ns > 0 ? e.delay_ns / ledger.total_delay_ns : 0.0;
    rep.top_decisions.push_back(std::move(s));
  }
}

LedgerDiff diff_explanations(const Explanation& a, const Explanation& b) {
  LedgerDiff diff;
  diff.flow_a = a.ledger.flow;
  diff.flow_b = b.ledger.flow;
  diff.delay_a_ns = a.ledger.total_delay_ns;
  diff.delay_b_ns = b.ledger.total_delay_ns;

  auto billed = [](const Explanation& e, int node) {
    auto it = e.attribution.delay_by_owner.find(node);
    return it == e.attribution.delay_by_owner.end() ? 0.0 : it->second;
  };

  // Union of nodes with a final verdict in either flow. Arithmetic node ids
  // are shared between the flows: width transforms only append nodes, so a
  // node id names the same operator on both sides.
  std::set<int> nodes;
  for (DecisionId id : a.result.decisions.final_decisions()) {
    nodes.insert(a.result.decisions.decision(id).node);
  }
  for (DecisionId id : b.result.decisions.final_decisions()) {
    nodes.insert(b.result.decisions.decision(id).node);
  }

  for (int node : nodes) {
    const DecisionId da = a.result.decisions.final_for_node(node);
    const DecisionId db = b.result.decisions.final_for_node(node);
    obs::prov::DiffEntry e;
    e.node = node;
    e.label = owner_label(a.result.graph.node_count() > node
                              ? a.result.graph
                              : b.result.graph,
                          node);
    if (da.valid()) {
      const Decision& d = a.result.decisions.decision(da);
      e.rule_a = d.rule;
      e.verdict_a = std::string(obs::prov::to_string(d.verdict));
    }
    if (db.valid()) {
      const Decision& d = b.result.decisions.decision(db);
      e.rule_b = d.rule;
      e.verdict_b = std::string(obs::prov::to_string(d.verdict));
    }
    if (e.verdict_a == e.verdict_b && e.rule_a == e.rule_b) continue;
    e.delay_a_ns = billed(a, node);
    e.delay_b_ns = billed(b, node);
    diff.entries.push_back(std::move(e));
  }
  std::sort(diff.entries.begin(), diff.entries.end(),
            [](const obs::prov::DiffEntry& x, const obs::prov::DiffEntry& y) {
              const double mx = std::max(x.delay_a_ns, x.delay_b_ns);
              const double my = std::max(y.delay_a_ns, y.delay_b_ns);
              if (mx != my) return mx > my;
              return x.node < y.node;
            });
  return diff;
}

std::string provenance_dot(const Explanation& e) {
  // Colour-blind-friendly categorical palette, cycled per cluster.
  static const char* kPalette[] = {
      "#a6cee3", "#b2df8a", "#fdbf6f", "#cab2d6", "#fb9a99", "#ffff99",
      "#1f78b4", "#33a02c", "#ff7f00", "#6a3d9a", "#e31a1c", "#b15928",
  };
  constexpr int kPaletteSize = static_cast<int>(std::size(kPalette));

  const dfg::Graph& g = e.result.graph;
  const cluster::Partition& p = e.result.partition;
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(3);
  os << "digraph provenance {\n"
     << "  rankdir=TB;\n"
     << "  node [fontname=\"Helvetica\", style=filled, fillcolor=white];\n"
     << "  label=\"" << e.ledger.design << " / " << e.ledger.flow
     << " — worst path " << e.timing.longest_path_ns
     << " ns (red outline = on critical path)\";\n";
  for (const dfg::Node& n : g.nodes()) {
    os << "  n" << n.id.value << " [label=\"" << dfg::to_string(n.kind) << "#"
       << n.id.value;
    if (!g.name(n).empty()) os << "\\n" << g.name(n);
    os << "\\nw=" << n.width;
    const int ci = p.index_of(n.id);
    if (ci >= 0 && p.clusters[static_cast<std::size_t>(ci)].root == n.id) {
      const DecisionId did = e.result.decisions.final_for_node(n.id.value);
      if (did.valid()) {
        os << "\\n" << e.result.decisions.decision(did).rule;
      }
    }
    os << "\"";
    if (ci >= 0) {
      os << ", fillcolor=\"" << kPalette[ci % kPaletteSize] << "\"";
      if (p.clusters[static_cast<std::size_t>(ci)].root == n.id) {
        os << ", shape=box";
      }
    } else {
      os << ", shape=ellipse, fillcolor=\"#eeeeee\"";
    }
    if (auto it = e.attribution.delay_by_owner.find(n.id.value);
        it != e.attribution.delay_by_owner.end() && it->second > 0.0) {
      os << ", color=red, penwidth=3, xlabel=\"" << it->second << " ns\"";
    }
    os << "];\n";
  }
  for (const dfg::Edge& ed : g.edges()) {
    os << "  n" << ed.src.value << " -> n" << ed.dst.value << " [label=\""
       << ed.width << (ed.sign == Sign::Signed ? "s" : "u") << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dpmerge::synth
