#pragma once

#include <string>

#include "dpmerge/netlist/netlist.h"
#include "dpmerge/netlist/sta.h"

namespace dpmerge::opt {

/// Timing-driven gate-level optimisation, standing in for the proprietary
/// optimiser of the paper's Table 2 (see DESIGN.md §1): iteratively improves
/// the longest path toward a target delay by
///   (a) upsizing cells on the critical path (X1 -> X2 -> X4), and
///   (b) buffering heavily loaded critical nets.
/// Timing is maintained incrementally (`netlist::IncrementalSta`): a drive
/// change re-propagates arrivals over the affected forward cone only; only
/// topology-changing buffer moves pay for a full rebuild. Runtime therefore
/// grows with netlist size and with the distance from the target — the
/// property Table 2 measures (smaller, faster initial netlists need far less
/// optimisation effort).
struct TimingOptOptions {
  double target_ns = 0.0;
  int max_moves = 200000;
  /// Nets with load above this (in cap units) are buffer candidates.
  double buffer_load_threshold = 12.0;
  /// After the target is met, walk the upsized cells off the critical path
  /// and shrink any whose downsizing keeps the target met (area recovery —
  /// commercial optimisers always finish with this).
  bool recover_area = true;
  /// Debug: after every incremental timing update, cross-check arrivals and
  /// the longest path against a full `Sta::analyze` and throw
  /// `std::logic_error` on divergence. Expensive — test/debug builds only.
  bool cross_check_sta = false;
};

struct TimingOptResult {
  double initial_ns = 0.0;
  double final_ns = 0.0;
  double initial_area = 0.0;
  double final_area = 0.0;
  int moves = 0;
  double runtime_sec = 0.0;
  bool met_target = false;

  std::string to_string() const;
};

class TimingOptimizer {
 public:
  explicit TimingOptimizer(const netlist::CellLibrary& lib) : lib_(lib) {}

  /// Optimises `net` in place until the target is met or no move improves
  /// the longest path.
  TimingOptResult optimize(netlist::Netlist& net,
                           const TimingOptOptions& opt) const;

 private:
  const netlist::CellLibrary& lib_;
};

}  // namespace dpmerge::opt
