#include "dpmerge/opt/timing_opt.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "dpmerge/obs/obs.h"

namespace dpmerge::opt {

using netlist::CellVariant;
using netlist::Gate;
using netlist::GateId;
using netlist::IncrementalSta;
using netlist::NetId;
using netlist::Netlist;
using netlist::Sta;

std::string TimingOptResult::to_string() const {
  std::ostringstream os;
  os << "delay " << initial_ns << " -> " << final_ns << " ns, area "
     << initial_area << " -> " << final_area << ", " << moves << " moves, "
     << runtime_sec << " s" << (met_target ? " (target met)" : "");
  return os.str();
}

namespace {

void cross_check(const Sta& sta, const Netlist& net,
                 const IncrementalSta& ista) {
  const auto full = sta.analyze(net);
  if (std::abs(full.longest_path_ns - ista.longest_path_ns()) > 1e-9) {
    throw std::logic_error("incremental STA longest path diverged from full");
  }
  for (std::size_t i = 0; i < full.arrival.size(); ++i) {
    if (std::abs(full.arrival[i] - ista.arrivals()[i]) > 1e-9) {
      throw std::logic_error("incremental STA arrival diverged on net " +
                             std::to_string(i));
    }
  }
}

}  // namespace

TimingOptResult TimingOptimizer::optimize(Netlist& net,
                                          const TimingOptOptions& opt) const {
  obs::Span span("opt.timing");
  const std::int64_t t0 = obs::now_us();
  Sta sta(lib_);
  IncrementalSta ista(net, lib_);
  TimingOptResult res;

  res.initial_ns = ista.longest_path_ns();
  res.initial_area = sta.area_scaled(net);

  auto check = [&] {
    if (opt.cross_check_sta) cross_check(sta, net, ista);
  };

  std::set<int> locked_upsize;   // gate ids where upsizing didn't help
  std::set<int> locked_buffer;   // nets already buffer-split

  while (ista.longest_path_ns() > opt.target_ns && res.moves < opt.max_moves) {
    const auto path = ista.critical_path();

    // Candidate 1: upsize the critical-path driver with the largest
    // estimated gain (resistance drop times output load).
    GateId best_gate{-1};
    double best_gain = 0.0;
    for (NetId pn : path) {
      const Gate* d = net.driver(pn);
      if (!d || d->drive + 1 >= netlist::kDriveLevels) continue;
      if (locked_upsize.count(d->id.value)) continue;
      const CellVariant& cur = lib_.variant(d->type, d->drive);
      const CellVariant& up = lib_.variant(d->type, d->drive + 1);
      const double gain = (cur.drive_res_ns - up.drive_res_ns) * ista.load(pn);
      if (gain > best_gain) {
        best_gain = gain;
        best_gate = d->id;
      }
    }

    bool applied = false;
    if (best_gate.value >= 0) {
      Gate& g = net.mutable_gates()[static_cast<std::size_t>(best_gate.value)];
      const double before_ns = ista.longest_path_ns();
      ++g.drive;
      ista.update_drive_change(g.id);
      check();
      const double delta_ns = before_ns - ista.longest_path_ns();
      if (delta_ns > 1e-9) {
        ++res.moves;
        applied = true;
        obs::stat_add("opt.upsize.accept");
        obs::stat_add("opt.slack_recovered_ps",
                      static_cast<std::int64_t>(std::llround(delta_ns * 1e3)));
      } else {
        --g.drive;  // revert: the larger input cap hurt upstream more
        ista.update_drive_change(g.id);
        check();
        locked_upsize.insert(best_gate.value);
        obs::stat_add("opt.upsize.reject");
      }
      if (obs::tracing()) {
        obs::instant("opt.move",
                     obs::TraceArgs()
                         .add("kind", "upsize")
                         .add("gate", best_gate.value)
                         .add("delta_ps", static_cast<std::int64_t>(std::llround(delta_ns * 1e3)))
                         .add("verdict", applied ? "accept" : "reject")
                         .str());
      }
    }

    if (!applied) {
      // Candidate 2: split the fanout of the most heavily loaded critical
      // net, keeping the critical successor directly connected and moving
      // the other readers behind a buffer.
      NetId worst{-1};
      double worst_load = opt.buffer_load_threshold;
      for (NetId pn : path) {
        if (locked_buffer.count(pn.value) || net.is_const(pn)) continue;
        const double l = ista.load(pn);
        if (l > worst_load) {
          worst_load = l;
          worst = pn;
        }
      }
      if (worst.value >= 0) {
        locked_buffer.insert(worst.value);
        // The critical successor is the gate driving the next net on the
        // path after `worst`.
        int keep_gate = -1;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          if (path[i] == worst) {
            const Gate* nxt = net.driver(path[i + 1]);
            if (nxt) keep_gate = nxt->id.value;
          }
        }
        const double before_ns = ista.longest_path_ns();
        const NetId buffered = net.buf(worst);
        int rewired = 0;
        for (Gate& g : net.mutable_gates()) {
          if (g.id.value == keep_gate) continue;
          if (g.output == buffered) continue;  // the buffer itself
          for (NetId& in : g.inputs) {
            if (in == worst) {
              in = buffered;
              ++rewired;
            }
          }
        }
        // Topology changed: incremental state is stale, rebuild from
        // scratch (buffer moves are rare next to drive changes).
        ista.rebuild();
        check();
        const double delta_ns = before_ns - ista.longest_path_ns();
        if (rewired > 0 && delta_ns > 1e-9) {
          ++res.moves;
          applied = true;
          obs::stat_add("opt.buffer.accept");
          obs::stat_add(
              "opt.slack_recovered_ps",
              static_cast<std::int64_t>(std::llround(delta_ns * 1e3)));
        } else {
          obs::stat_add("opt.buffer.reject");
        }
        if (obs::tracing()) {
          obs::instant("opt.move",
                       obs::TraceArgs()
                           .add("kind", "buffer")
                           .add("net", worst.value)
                           .add("rewired", rewired)
                           .add("delta_ps", static_cast<std::int64_t>(std::llround(delta_ns * 1e3)))
                           .add("verdict", applied ? "accept" : "reject")
                           .str());
        }
        // Otherwise keep the (harmless) buffer and whatever timing
        // resulted; mark and move on.
      }
    }

    if (!applied && best_gate.value < 0) break;  // no candidates left
    if (!applied) {
      // Both move kinds exhausted without improvement this round; stop when
      // every upsize is locked and no bufferable net remains.
      bool any_left = false;
      for (NetId pn : ista.critical_path()) {
        const Gate* d = net.driver(pn);
        if (d && d->drive + 1 < netlist::kDriveLevels &&
            !locked_upsize.count(d->id.value)) {
          any_left = true;
        }
      }
      if (!any_left) break;
    }
  }

  // Area recovery: once the target is met, try to give back the sizing on
  // cells that no longer need it.
  if (opt.recover_area && ista.longest_path_ns() <= opt.target_ns) {
    for (Gate& g : net.mutable_gates()) {
      while (g.drive > 0) {
        --g.drive;
        ista.update_drive_change(g.id);
        check();
        if (ista.longest_path_ns() <= opt.target_ns) {
          ++res.moves;
          obs::stat_add("opt.downsize.accept");
        } else {
          ++g.drive;
          ista.update_drive_change(g.id);
          check();
          break;
        }
      }
    }
  }

  res.final_ns = ista.longest_path_ns();
  res.final_area = sta.area_scaled(net);
  res.met_target = res.final_ns <= opt.target_ns;
  res.runtime_sec = static_cast<double>(obs::now_us() - t0) * 1e-6;
  return res;
}

}  // namespace dpmerge::opt
