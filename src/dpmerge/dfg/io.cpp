#include "dpmerge/dfg/io.h"

#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace dpmerge::dfg {

namespace {

std::string node_ref(const Graph& g, NodeId id) {
  const Node& n = g.node(id);
  return g.name(n).empty() ? "_n" + std::to_string(n.id.value) : g.name(n);
}

OpKind kind_from(const std::string& s, int line) {
  if (s == "add") return OpKind::Add;
  if (s == "sub") return OpKind::Sub;
  if (s == "mul") return OpKind::Mul;
  if (s == "neg") return OpKind::Neg;
  if (s == "shl") return OpKind::Shl;
  if (s == "lts") return OpKind::LtS;
  if (s == "ltu") return OpKind::LtU;
  if (s == "eq") return OpKind::Eq;
  if (s == "ext") return OpKind::Extension;
  throw std::invalid_argument("line " + std::to_string(line) +
                              ": unknown operator kind '" + s + "'");
}

std::string kind_name(OpKind k) {
  switch (k) {
    case OpKind::Add:
      return "add";
    case OpKind::Sub:
      return "sub";
    case OpKind::Mul:
      return "mul";
    case OpKind::Neg:
      return "neg";
    case OpKind::Shl:
      return "shl";
    case OpKind::LtS:
      return "lts";
    case OpKind::LtU:
      return "ltu";
    case OpKind::Eq:
      return "eq";
    case OpKind::Extension:
      return "ext";
    default:
      return "?";
  }
}

Sign sign_from(const std::string& s, int line) {
  if (s == "signed" || s == "s" || s == "1") return Sign::Signed;
  if (s == "unsigned" || s == "u" || s == "0") return Sign::Unsigned;
  throw std::invalid_argument("line " + std::to_string(line) +
                              ": bad signedness '" + s + "'");
}

}  // namespace

std::string to_text(const Graph& g) {
  std::ostringstream os;
  os << "dfg v1\n";
  for (const Node& n : g.nodes()) {
    switch (n.kind) {
      case OpKind::Input:
        os << "input " << node_ref(g, n.id) << " " << n.width << " "
           << to_string(n.ext_sign) << "\n";
        break;
      case OpKind::Const:
        os << "const " << node_ref(g, n.id) << " " << n.width << " 0b"
           << n.value.to_string() << "\n";
        break;
      case OpKind::Output:
        os << "output " << node_ref(g, n.id) << " " << n.width << "\n";
        break;
      case OpKind::Shl:
        os << "node " << node_ref(g, n.id) << " shl " << n.width << " "
           << n.shift << "\n";
        break;
      case OpKind::Extension:
        os << "node " << node_ref(g, n.id) << " ext " << n.width << " "
           << to_string(n.ext_sign) << "\n";
        break;
      default:
        os << "node " << node_ref(g, n.id) << " " << kind_name(n.kind) << " "
           << n.width << "\n";
        break;
    }
  }
  for (const Edge& e : g.edges()) {
    os << "edge " << node_ref(g, e.src) << " " << node_ref(g, e.dst) << " "
       << e.dst_port << " " << e.width << " " << to_string(e.sign) << "\n";
  }
  return os.str();
}

Graph parse_graph(const std::string& text) {
  Graph g;
  std::map<std::string, NodeId> byname;
  std::istringstream is(text);
  std::string line;
  int lineno = 0;
  bool header_seen = false;

  auto fail = [&lineno](const std::string& msg) -> void {
    throw std::invalid_argument("line " + std::to_string(lineno) + ": " + msg);
  };
  auto lookup = [&](const std::string& name) {
    const auto it = byname.find(name);
    if (it == byname.end()) fail("unknown node '" + name + "'");
    return it->second;
  };
  auto define = [&](const std::string& name, NodeId id) {
    if (!byname.emplace(name, id).second) fail("duplicate node '" + name + "'");
  };

  while (std::getline(is, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(t);
    if (tok.empty()) continue;

    if (!header_seen) {
      if (tok.size() != 2 || tok[0] != "dfg" || tok[1] != "v1") {
        fail("expected header 'dfg v1'");
      }
      header_seen = true;
      continue;
    }

    const std::string& cmd = tok[0];
    if (cmd == "input") {
      if (tok.size() < 3 || tok.size() > 4) fail("input <name> <width> [sign]");
      const int w = std::stoi(tok[2]);
      if (w <= 0) fail("width must be positive");
      const NodeId id = g.add_node(OpKind::Input, w, tok[1]);
      g.set_node_ext_sign(id, tok.size() == 4 ? sign_from(tok[3], lineno)
                                              : Sign::Signed);
      define(tok[1], id);
    } else if (cmd == "output") {
      if (tok.size() != 3) fail("output <name> <width>");
      const int w = std::stoi(tok[2]);
      if (w <= 0) fail("width must be positive");
      define(tok[1], g.add_node(OpKind::Output, w, tok[1]));
    } else if (cmd == "const") {
      if (tok.size() != 4) fail("const <name> <width> <value>");
      const int w = std::stoi(tok[2]);
      if (w <= 0) fail("width must be positive");
      BitVector v;
      if (tok[3].rfind("0b", 0) == 0) {
        v = BitVector::from_string(tok[3].substr(2)).resize(w, Sign::Signed);
      } else {
        v = BitVector::from_int(w, std::stoll(tok[3]));
      }
      define(tok[1], g.add_const(v, tok[1]));
    } else if (cmd == "node") {
      if (tok.size() < 4) fail("node <name> <kind> <width> [arg]");
      const OpKind k = kind_from(tok[2], lineno);
      const int w = std::stoi(tok[3]);
      if (w <= 0) fail("width must be positive");
      const NodeId id = g.add_node(k, w, tok[1]);
      if (k == OpKind::Shl) {
        if (tok.size() != 5) fail("shl needs a shift amount");
        const int s = std::stoi(tok[4]);
        if (s < 0) fail("shift must be non-negative");
        g.set_node_shift(id, s);
      } else if (k == OpKind::Extension) {
        if (tok.size() != 5) fail("ext needs a signedness");
        g.set_node_ext_sign(id, sign_from(tok[4], lineno));
      } else if (tok.size() != 4) {
        fail("unexpected extra token");
      }
      define(tok[1], id);
    } else if (cmd == "edge") {
      if (tok.size() != 6) fail("edge <src> <dst> <port> <width> <sign>");
      const NodeId src = lookup(tok[1]);
      const NodeId dst = lookup(tok[2]);
      const int port = std::stoi(tok[3]);
      const int w = std::stoi(tok[4]);
      if (w <= 0) fail("width must be positive");
      const int want = operand_count(g.node(dst).kind);
      if (port < 0 || port >= want) fail("port out of range");
      if (static_cast<int>(g.node(dst).in.size()) > port &&
          g.node(dst).in[static_cast<std::size_t>(port)].valid()) {
        fail("port already connected");
      }
      g.add_edge(src, dst, port, w, sign_from(tok[5], lineno));
    } else {
      fail("unknown directive '" + cmd + "'");
    }
  }
  if (!header_seen) {
    lineno = 1;
    fail("empty input");
  }
  const auto errs = g.validate();
  if (!errs.empty()) {
    throw std::invalid_argument("graph invalid after parse: " + errs.front());
  }
  return g;
}

}  // namespace dpmerge::dfg
