#pragma once

#include <iosfwd>
#include <string>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::dfg {

/// Plain-text serialisation of DFGs, so designs can be stored in files and
/// fed to the tools (examples/width_inspector reads it). One declaration per
/// line; `#` starts a comment. Node names are assigned to every node
/// (auto-generated `_n<k>` where the graph has none):
///
///   dfg v1
///   input a 8            # name width  (inputs carry their value signedness
///   input b 8 unsigned   #  as an optional third token, default signed)
///   const k 8 -5         # name width value
///   node t add 9         # name kind width   (kinds: add sub mul neg shl
///   node s shl 12 3      #  lts ltu eq ext; shl takes the shift amount,
///   node e ext 12 signed #  ext takes the extension signedness)
///   edge a t 0 9 signed  # src dst port width signedness
///   output r 9           # name width
///   edge t r 0 9 signed
///
/// `parse_graph` throws std::invalid_argument with a line number on malformed
/// input; the result always passes Graph::validate().
std::string to_text(const Graph& g);
Graph parse_graph(const std::string& text);

}  // namespace dpmerge::dfg
