#include "dpmerge/dfg/eval.h"

#include <sstream>
#include <stdexcept>

namespace dpmerge::dfg {

// The frozen CSR view already carries the Kahn topo order; reuse it instead
// of re-deriving one per Evaluator.
Evaluator::Evaluator(const Graph& g) : g_(g), order_(g.freeze().topo) {
  input_order_ = g.inputs();
}

BitVector Evaluator::carried_on_edge(
    EdgeId eid, const std::vector<BitVector>& results) const {
  const Edge& e = g_.edge(eid);
  return results[static_cast<std::size_t>(e.src.value)].resize(e.width,
                                                               e.sign);
}

BitVector Evaluator::operand_via_edge(
    EdgeId eid, const std::vector<BitVector>& results) const {
  const Edge& e = g_.edge(eid);
  const Node& dst = g_.node(e.dst);
  const BitVector carried = carried_on_edge(eid, results);
  if (dst.kind == OpKind::Extension) {
    // Definition 5.5: the node's own width/signedness governs the resize.
    return carried.resize(dst.width, dst.ext_sign);
  }
  return carried.resize(dst.width, e.sign);
}

std::vector<BitVector> Evaluator::run(
    const std::vector<BitVector>& inputs) const {
  if (inputs.size() != input_order_.size()) {
    throw std::invalid_argument("stimulus count mismatch");
  }
  std::vector<BitVector> results(static_cast<std::size_t>(g_.node_count()));
  for (std::size_t i = 0; i < input_order_.size(); ++i) {
    const Node& n = g_.node(input_order_[i]);
    if (inputs[i].width() != n.width) {
      throw std::invalid_argument("stimulus width mismatch for input '" +
                                  g_.name(n) + "'");
    }
    results[static_cast<std::size_t>(n.id.value)] = inputs[i];
  }
  for (NodeId id : order_) {
    const Node& n = g_.node(id);
    auto& out = results[static_cast<std::size_t>(id.value)];
    switch (n.kind) {
      case OpKind::Input:
        break;  // already set
      case OpKind::Const:
        out = n.value;
        break;
      case OpKind::Output:
      case OpKind::Extension:
        out = operand_via_edge(n.in[0], results);
        break;
      case OpKind::Neg:
        out = operand_via_edge(n.in[0], results).negate();
        break;
      case OpKind::Add:
        out = operand_via_edge(n.in[0], results)
                  .add(operand_via_edge(n.in[1], results));
        break;
      case OpKind::Sub:
        out = operand_via_edge(n.in[0], results)
                  .sub(operand_via_edge(n.in[1], results));
        break;
      case OpKind::Mul:
        out = operand_via_edge(n.in[0], results)
                  .mul(operand_via_edge(n.in[1], results));
        break;
      case OpKind::Shl:
        out = operand_via_edge(n.in[0], results).shl(n.shift);
        break;
      case OpKind::LtS:
      case OpKind::LtU:
      case OpKind::Eq: {
        const BitVector a = operand_via_edge(n.in[0], results);
        const BitVector b = operand_via_edge(n.in[1], results);
        bool r = false;
        if (n.kind == OpKind::LtS) {
          r = a.signed_lt(b);
        } else if (n.kind == OpKind::LtU) {
          r = a.unsigned_lt(b);
        } else {
          r = a == b;
        }
        out = BitVector::from_uint(n.width, r ? 1 : 0);
        break;
      }
    }
  }
  return results;
}

std::vector<BitVector> Evaluator::run_outputs(
    const std::vector<BitVector>& inputs) const {
  const auto results = run(inputs);
  std::vector<BitVector> outs;
  for (NodeId id : g_.outputs()) {
    outs.push_back(results[static_cast<std::size_t>(id.value)]);
  }
  return outs;
}

std::vector<BitVector> Evaluator::random_inputs(Rng& rng) const {
  std::vector<BitVector> v;
  v.reserve(input_order_.size());
  for (NodeId id : input_order_) {
    v.push_back(rng.bits(g_.node(id).width));
  }
  return v;
}

namespace {

std::vector<BitVector> pattern_inputs(const Graph& g, bool ones) {
  std::vector<BitVector> v;
  for (NodeId id : g.inputs()) {
    BitVector b(g.node(id).width);
    if (ones) b = b.bit_not();
    v.push_back(b);
  }
  return v;
}

/// Reorders `vals` (in a-input order) into b-input order by matching names.
std::vector<BitVector> permute_by_name(const Graph& a, const Graph& b,
                                       const std::vector<BitVector>& vals) {
  const auto ai = a.inputs();
  const auto bi = b.inputs();
  std::vector<BitVector> out;
  out.reserve(bi.size());
  for (NodeId bid : bi) {
    const std::string& name = b.name(bid);
    bool found = false;
    for (std::size_t k = 0; k < ai.size(); ++k) {
      if (a.name(ai[k]) == name) {
        out.push_back(vals[k]);
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("input '" + name + "' missing");
  }
  return out;
}

}  // namespace

bool equivalent_by_simulation(const Graph& a, const Graph& b, int trials,
                              Rng& rng, std::string* first_mismatch) {
  Evaluator ea(a);
  Evaluator eb(b);
  const auto a_outs = a.outputs();
  const auto b_outs = b.outputs();
  if (a_outs.size() != b_outs.size()) {
    if (first_mismatch) *first_mismatch = "output count differs";
    return false;
  }

  auto check = [&](const std::vector<BitVector>& stim_a) {
    const auto ra = ea.run_outputs(stim_a);
    const auto rb = eb.run_outputs(permute_by_name(a, b, stim_a));
    for (std::size_t i = 0; i < ra.size(); ++i) {
      // Match b's output by name, to tolerate node-id reordering.
      const std::string& name = a.name(a_outs[i]);
      std::size_t j = 0;
      for (; j < b_outs.size(); ++j) {
        if (b.name(b_outs[j]) == name) break;
      }
      if (j == b_outs.size() || ra[i] != rb[j]) {
        if (first_mismatch) {
          std::ostringstream os;
          os << "output '" << name << "' differs: "
             << ra[i].to_string() << " vs "
             << (j == b_outs.size() ? std::string("<missing>")
                                    : rb[j].to_string());
          *first_mismatch = os.str();
        }
        return false;
      }
    }
    return true;
  };

  if (!check(pattern_inputs(a, false))) return false;
  if (!check(pattern_inputs(a, true))) return false;
  for (int t = 0; t < trials; ++t) {
    if (!check(ea.random_inputs(rng))) return false;
  }
  return true;
}

}  // namespace dpmerge::dfg
