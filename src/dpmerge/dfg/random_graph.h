#pragma once

#include "dpmerge/dfg/graph.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::dfg {

/// Knobs for the random-DFG generator used by the property-test sweeps and
/// the scaling benchmarks.
struct RandomGraphOptions {
  int num_inputs = 4;
  int num_operators = 12;
  int min_width = 2;
  int max_width = 16;
  double mul_fraction = 0.2;   ///< Probability an operator is a multiply.
  double neg_fraction = 0.1;   ///< Probability an operator is a unary minus.
  double sub_fraction = 0.2;   ///< Probability an operator is a subtract.
  double shl_fraction = 0.08;  ///< Probability an operator is a const shift.
  double cmp_fraction = 0.06;  ///< Probability an operator is a comparator.
  double signed_edge_fraction = 0.5;
  /// Probability that an edge resizes (its width differs from the source
  /// node's width), exercising the truncate/extend semantics.
  double resize_edge_fraction = 0.5;
};

/// Generates a random connected DAG of datapath operators. Every operator
/// node reaches at least one Output node (dangling results get outputs), so
/// required precision is defined at every port.
Graph random_graph(Rng& rng, const RandomGraphOptions& opt = {});

}  // namespace dpmerge::dfg
