#pragma once

#include <string>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::dfg {

/// Convenience layer for constructing DFGs in tests, examples and workload
/// generators. An `Operand` names a source node plus the edge attributes
/// (width w(e) and signedness t(e)) of the connection; `width == 0` means
/// "same width as the source node" (a plain, non-resizing connection).
struct Operand {
  NodeId node;
  int width = 0;
  Sign sign = Sign::Unsigned;
};

class Builder {
 public:
  explicit Builder(Graph& g) : g_(g) {}

  NodeId input(std::string name, int width, Sign value_sign = Sign::Signed) {
    const NodeId id = g_.add_node(OpKind::Input, width, std::move(name));
    g_.set_node_ext_sign(id, value_sign);
    return id;
  }

  NodeId constant(int width, std::int64_t value, std::string name = {}) {
    return g_.add_const(BitVector::from_int(width, value), std::move(name));
  }

  NodeId add(int width, Operand a, Operand b) {
    return binary(OpKind::Add, width, a, b);
  }
  NodeId sub(int width, Operand a, Operand b) {
    return binary(OpKind::Sub, width, a, b);
  }
  NodeId mul(int width, Operand a, Operand b) {
    return binary(OpKind::Mul, width, a, b);
  }
  NodeId neg(int width, Operand a) {
    const NodeId id = g_.add_node(OpKind::Neg, width);
    connect(a, id, 0);
    return id;
  }

  /// Shift left by a constant amount (result modulo 2^width).
  NodeId shl(int width, Operand a, int shift) {
    const NodeId id = g_.add_node(OpKind::Shl, width);
    g_.set_node_shift(id, shift);
    connect(a, id, 0);
    return id;
  }

  /// Comparators: 1-bit results carried zero-padded in `width` bits.
  NodeId lt_signed(int width, Operand a, Operand b) {
    return binary(OpKind::LtS, width, a, b);
  }
  NodeId lt_unsigned(int width, Operand a, Operand b) {
    return binary(OpKind::LtU, width, a, b);
  }
  NodeId eq(int width, Operand a, Operand b) {
    return binary(OpKind::Eq, width, a, b);
  }

  NodeId output(std::string name, int width, Operand a) {
    const NodeId id = g_.add_node(OpKind::Output, width, std::move(name));
    connect(a, id, 0);
    return id;
  }

  /// Explicit extension/truncation node (Definition 5.5).
  NodeId extension(int width, Sign t, Operand a) {
    const NodeId id = g_.add_node(OpKind::Extension, width);
    g_.set_node_ext_sign(id, t);
    connect(a, id, 0);
    return id;
  }

  Graph& graph() { return g_; }

 private:
  NodeId binary(OpKind k, int width, Operand a, Operand b) {
    const NodeId id = g_.add_node(k, width);
    connect(a, id, 0);
    connect(b, id, 1);
    return id;
  }

  void connect(Operand o, NodeId dst, int port) {
    g_.add_edge(o.node, dst, port, o.width, o.sign);
  }

  Graph& g_;
};

}  // namespace dpmerge::dfg
