// Builds the frozen CSR view of a Graph (see Csr in graph.h): flat fanin /
// fanout adjacency, the Kahn-LIFO topological order, and forward / reverse
// dataflow levels with their level buckets. Everything here is a pure
// function of the graph structure, so the cache keys off the structural
// version counter alone.

#include <algorithm>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::dfg {

namespace {

void build_csr(const Graph& g, Csr& c) {
  const int n = g.node_count();
  const int m = g.edge_count();
  c.num_nodes = n;
  c.num_edges = m;

  // Fanout / fanin adjacency. Out-edges keep each node's insertion order
  // (same as Node::out); in-edges keep destination-port order, skipping
  // unconnected ports.
  c.out_begin.assign(static_cast<std::size_t>(n) + 1, 0);
  c.in_begin.assign(static_cast<std::size_t>(n) + 1, 0);
  c.out_edges.resize(static_cast<std::size_t>(m));
  std::size_t in_total = 0;
  for (const Node& nd : g.nodes()) {
    c.out_begin[static_cast<std::size_t>(nd.id.value) + 1] =
        static_cast<std::int32_t>(nd.out.size());
    std::int32_t ins = 0;
    for (EdgeId e : nd.in) {
      if (e.valid()) ++ins;
    }
    c.in_begin[static_cast<std::size_t>(nd.id.value) + 1] = ins;
    in_total += static_cast<std::size_t>(ins);
  }
  for (int v = 0; v < n; ++v) {
    c.out_begin[static_cast<std::size_t>(v) + 1] +=
        c.out_begin[static_cast<std::size_t>(v)];
    c.in_begin[static_cast<std::size_t>(v) + 1] +=
        c.in_begin[static_cast<std::size_t>(v)];
  }
  c.in_edges.resize(in_total);
  for (const Node& nd : g.nodes()) {
    std::int32_t* out =
        c.out_edges.data() + c.out_begin[static_cast<std::size_t>(nd.id.value)];
    for (EdgeId e : nd.out) *out++ = e.value;
    std::int32_t* in =
        c.in_edges.data() + c.in_begin[static_cast<std::size_t>(nd.id.value)];
    for (EdgeId e : nd.in) {
      if (e.valid()) *in++ = e.value;
    }
  }

  // Kahn-LIFO topological order over the flat arrays — must stay
  // element-for-element identical to Graph::topo_order().
  std::vector<int> pending(static_cast<std::size_t>(n), 0);
  std::vector<NodeId> ready;
  c.topo.clear();
  c.topo.reserve(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    const auto cnt = static_cast<int>(c.in_begin[static_cast<std::size_t>(v) +
                                                 1] -
                                      c.in_begin[static_cast<std::size_t>(v)]);
    pending[static_cast<std::size_t>(v)] = cnt;
    if (cnt == 0) ready.push_back(NodeId{v});
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    c.topo.push_back(id);
    for (std::int32_t eid : c.out(id)) {
      const NodeId d = g.edge(EdgeId{eid}).dst;
      if (--pending[static_cast<std::size_t>(d.value)] == 0) {
        ready.push_back(d);
      }
    }
  }

  // Forward levels (sources at 0) in topo order, then reverse levels (sinks
  // at 0) in reverse topo order.
  c.level.assign(static_cast<std::size_t>(n), 0);
  std::int32_t max_level = -1;
  for (const NodeId v : c.topo) {
    std::int32_t lv = 0;
    for (std::int32_t eid : c.in(v)) {
      const NodeId s = g.edge(EdgeId{eid}).src;
      lv = std::max(lv, c.level[static_cast<std::size_t>(s.value)] + 1);
    }
    c.level[static_cast<std::size_t>(v.value)] = lv;
    max_level = std::max(max_level, lv);
  }
  c.rlevel.assign(static_cast<std::size_t>(n), 0);
  std::int32_t max_rlevel = -1;
  for (auto it = c.topo.rbegin(); it != c.topo.rend(); ++it) {
    const NodeId v = *it;
    std::int32_t lv = 0;
    for (std::int32_t eid : c.out(v)) {
      const NodeId d = g.edge(EdgeId{eid}).dst;
      lv = std::max(lv, c.rlevel[static_cast<std::size_t>(d.value)] + 1);
    }
    c.rlevel[static_cast<std::size_t>(v.value)] = lv;
    max_rlevel = std::max(max_rlevel, lv);
  }

  // Bucket nodes by level (counting sort => ascending node id per level).
  auto bucket = [n](const std::vector<std::int32_t>& level,
                    std::int32_t levels, std::vector<std::int32_t>& begin,
                    std::vector<NodeId>& nodes) {
    begin.assign(static_cast<std::size_t>(levels) + 1, 0);
    for (int v = 0; v < n; ++v) {
      ++begin[static_cast<std::size_t>(level[static_cast<std::size_t>(v)]) +
              1];
    }
    for (std::int32_t l = 0; l < levels; ++l) {
      begin[static_cast<std::size_t>(l) + 1] +=
          begin[static_cast<std::size_t>(l)];
    }
    nodes.resize(static_cast<std::size_t>(n));
    std::vector<std::int32_t> cursor(begin.begin(), begin.end() - 1);
    for (int v = 0; v < n; ++v) {
      auto& at = cursor[static_cast<std::size_t>(
          level[static_cast<std::size_t>(v)])];
      nodes[static_cast<std::size_t>(at++)] = NodeId{v};
    }
  };
  bucket(c.level, max_level + 1, c.level_begin, c.level_nodes);
  bucket(c.rlevel, max_rlevel + 1, c.rlevel_begin, c.rlevel_nodes);
}

}  // namespace

const Csr& Graph::freeze() const {
  if (csr_version_ != version_) {
    build_csr(*this, csr_);
    csr_version_ = version_;
  }
  return csr_;
}

}  // namespace dpmerge::dfg
