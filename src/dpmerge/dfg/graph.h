#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dpmerge/support/bitvector.h"
#include "dpmerge/support/sign.h"

namespace dpmerge::dfg {

/// Kinds of DFG nodes. The paper (Section 2.1) restricts the discussion to
/// +, -, x and unary minus "for the sake of clarity" but notes the analyses
/// apply to shifters and comparators too; this implementation includes both:
/// `Shl` (shift left by a constant — fully mergeable, its addends are just
/// column-shifted CSA rows) and the comparators `LtS`/`LtU`/`Eq` (1-bit
/// results, natural cluster boundaries). `Extension` nodes are the explicit
/// truncate-or-extend operators introduced by the information-content width
/// pruning transformation (Definition 5.5). `Const` nodes let designs express
/// constant multiples (Observation 5.9) directly.
enum class OpKind : unsigned char {
  Input,
  Output,
  Const,
  Add,
  Sub,
  Mul,
  Neg,        // unary minus
  Shl,        // shift left by the node's constant `shift` attribute
  LtS,        // signed less-than, 1-bit result (width still w(N), zero-padded)
  LtU,        // unsigned less-than
  Eq,         // equality
  Extension,  // explicit width adaptation (Definition 5.5)
};

bool is_operator(OpKind k);          // everything except Input/Output/Const
bool is_arith_operator(OpKind k);    // Add/Sub/Mul/Neg/Shl (mergeable ops)
bool is_comparator(OpKind k);        // LtS/LtU/Eq
int operand_count(OpKind k);         // expected number of input ports
std::string_view to_string(OpKind k);

struct NodeId {
  int value = -1;
  bool valid() const { return value >= 0; }
  auto operator<=>(const NodeId&) const = default;
};

struct EdgeId {
  int value = -1;
  bool valid() const { return value >= 0; }
  auto operator<=>(const EdgeId&) const = default;
};

/// A DFG node. `width` is w(N): for inputs/outputs the signal bitwidth, for
/// operator nodes the number of bits used to represent operands and result
/// (Section 2.1). `ext_sign` is meaningful for `Extension` nodes (t(N) of
/// Definition 5.5) and for `Input` nodes, where it declares how the
/// environment interprets the input value (used only as documentation and by
/// workload generators; the analyses derive signedness from edges).
///
/// Names are interned in the owning Graph (`Graph::name(id)`); a node only
/// pays a 4-byte pool index, so megagraphs with mostly-anonymous interior
/// nodes carry no per-node string.
struct Node {
  NodeId id;
  OpKind kind = OpKind::Add;
  int width = 0;
  int shift = 0;  ///< Shift amount; only for OpKind::Shl.
  Sign ext_sign = Sign::Unsigned;
  std::int32_t name_id = -1;  ///< Interned name pool index; -1 = unnamed.
  BitVector value;    ///< Constant value; only for OpKind::Const.
  std::vector<EdgeId> in;   ///< Ordered by destination port index.
  std::vector<EdgeId> out;  ///< Unordered fanout list.
};

/// A DFG edge with its width w(e) and signedness t(e) (Section 2.1). The
/// value carried and the operand delivered follow Section 2.2:
///   carried(e)  = resize(result(src), w(e), t(e))
///   operand     = resize(carried(e), w(dst), t(e))   [for arith operators]
struct Edge {
  EdgeId id;
  NodeId src;
  NodeId dst;
  int dst_port = 0;  ///< Operand index at the destination node.
  int width = 0;     ///< w(e)
  Sign sign = Sign::Unsigned;  ///< t(e)
};

/// Frozen compressed-sparse-row view of a Graph's *structure*: flat fanin /
/// fanout edge-id arrays plus the traversal products every hot pass needs
/// (topological order, forward/reverse dataflow levels). Built once by
/// `Graph::freeze()` and cached until the next structural mutation; width /
/// sign / shift updates do NOT invalidate it (read those through the Graph).
///
/// The point is cache behaviour at 100k+-node scale: a sweep touches two
/// flat int32 arrays instead of chasing a per-node `std::vector<EdgeId>`
/// allocation, and the level buckets give parallel sweeps their natural
/// grain (all nodes of one level are mutually independent — DESIGN.md §11).
struct Csr {
  int num_nodes = 0;
  int num_edges = 0;

  /// Fanout: out-edge ids of node v are out_edges[out_begin[v]..out_begin[v+1]).
  std::vector<std::int32_t> out_begin;
  std::vector<std::int32_t> out_edges;
  /// Fanin: in-edge ids of node v in destination-port order (invalid /
  /// unconnected ports are skipped).
  std::vector<std::int32_t> in_begin;
  std::vector<std::int32_t> in_edges;

  /// Kahn-LIFO topological order — element-for-element identical to
  /// `Graph::topo_order()` (cluster numbering and netlist emission depend on
  /// that order, so the frozen view must not invent a different one).
  std::vector<NodeId> topo;

  /// Forward dataflow levels: sources are level 0, otherwise
  /// 1 + max(level of predecessors). `level_nodes` groups nodes by level
  /// (ascending node id within a level); level l spans
  /// level_nodes[level_begin[l]..level_begin[l+1]).
  std::vector<std::int32_t> level;
  std::vector<std::int32_t> level_begin;
  std::vector<NodeId> level_nodes;

  /// Reverse levels from the sinks (sinks are rlevel 0), same layout.
  std::vector<std::int32_t> rlevel;
  std::vector<std::int32_t> rlevel_begin;
  std::vector<NodeId> rlevel_nodes;

  std::span<const std::int32_t> out(NodeId v) const {
    return {out_edges.data() + out_begin[static_cast<std::size_t>(v.value)],
            out_edges.data() +
                out_begin[static_cast<std::size_t>(v.value) + 1]};
  }
  std::span<const std::int32_t> in(NodeId v) const {
    return {in_edges.data() + in_begin[static_cast<std::size_t>(v.value)],
            in_edges.data() + in_begin[static_cast<std::size_t>(v.value) + 1]};
  }
  int num_levels() const { return static_cast<int>(level_begin.size()) - 1; }
  int num_rlevels() const { return static_cast<int>(rlevel_begin.size()) - 1; }
  std::span<const NodeId> level_span(int l) const {
    return {level_nodes.data() + level_begin[static_cast<std::size_t>(l)],
            level_nodes.data() + level_begin[static_cast<std::size_t>(l) + 1]};
  }
  std::span<const NodeId> rlevel_span(int l) const {
    return {rlevel_nodes.data() + rlevel_begin[static_cast<std::size_t>(l)],
            rlevel_nodes.data() +
                rlevel_begin[static_cast<std::size_t>(l) + 1]};
  }
};

/// Reusable scratch for `Graph::topo_order_into`, so hot callers don't pay
/// two vector allocations per traversal.
struct TopoScratch {
  std::vector<int> pending;
  std::vector<NodeId> ready;
};

/// A data flow graph of datapath operators: directed, acyclic, connected
/// (Section 2.1). Nodes and edges are stored in stable index vectors; ids are
/// never reused. The only structural mutations the paper's transformations
/// need are width/sign updates, extension-node insertion and edge rewiring,
/// all provided here; removal is not supported (and not needed).
///
/// Thread-safety: const accessors are safe to call concurrently EXCEPT
/// `freeze()` (the first call after a structural mutation builds the cache).
/// Parallel passes freeze once up front, then share the Csr read-only.
class Graph {
 public:
  NodeId add_node(OpKind kind, int width, std::string name = {});
  NodeId add_const(const BitVector& value, std::string name = {});

  /// Adds an edge src -> (dst, dst_port) with width/sign attributes.
  /// `width == 0` is shorthand for "the source node's width".
  EdgeId add_edge(NodeId src, NodeId dst, int dst_port, int width = 0,
                  Sign sign = Sign::Unsigned);

  /// Pre-sizes the node/edge stores; generators building megagraphs call
  /// this so construction is two big allocations instead of log(n) regrows.
  void reserve(int nodes, int edges);

  const Node& node(NodeId id) const {
    return nodes_[static_cast<std::size_t>(id.value)];
  }
  const Edge& edge(EdgeId id) const {
    return edges_[static_cast<std::size_t>(id.value)];
  }

  /// The node's interned name; returns the empty string for unnamed nodes.
  const std::string& name(NodeId id) const {
    const std::int32_t nid = node(id).name_id;
    return nid < 0 ? empty_name() : names_[static_cast<std::size_t>(nid)];
  }
  const std::string& name(const Node& n) const {
    return n.name_id < 0 ? empty_name()
                         : names_[static_cast<std::size_t>(n.name_id)];
  }

  int node_count() const { return static_cast<int>(nodes_.size()); }
  int edge_count() const { return static_cast<int>(edges_.size()); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Edge>& edges() const { return edges_; }

  // ---- mutation (used by the width-pruning transformations) ----
  void set_node_width(NodeId id, int width);
  void set_node_ext_sign(NodeId id, Sign s);
  void set_node_shift(NodeId id, int shift);
  void set_edge_width(EdgeId id, int width);
  void set_edge_sign(EdgeId id, Sign s);

  /// Lemma 5.6 rewiring: inserts a new Extension node E after `n`, moving all
  /// out-edges of `n` so they originate at E, and connecting n -> E with an
  /// edge of width `edge_width` (signedness immaterial per the lemma; we use
  /// `ext_sign`). Returns E's id.
  NodeId insert_extension_after(NodeId n, int ext_width, Sign ext_sign,
                                int edge_width);

  /// Like `insert_extension_after`, but moves only the listed out-edges of
  /// `n` to the new Extension node (used when only some consumers need the
  /// materialised wide value). The n -> E edge gets n's current width.
  NodeId insert_extension_retarget(NodeId n, int ext_width, Sign ext_sign,
                                   const std::vector<EdgeId>& edges);

  // ---- queries ----
  std::vector<NodeId> inputs() const;
  std::vector<NodeId> outputs() const;

  /// Nodes in a topological order (sources first). The graph must be acyclic.
  std::vector<NodeId> topo_order() const;

  /// Allocation-free topo sweep for hot callers: writes the order into
  /// `order` (cleared and refilled) using `scratch`'s buffers. Emits a
  /// partial order if the graph has a cycle (callers compare sizes).
  void topo_order_into(std::vector<NodeId>& order, TopoScratch& scratch) const;

  /// Frozen CSR view of the current structure (see `Csr`). Cached; rebuilt
  /// lazily after the next `add_node`/`add_edge`/`insert_extension_*`.
  /// Width/sign/shift setters do not invalidate it.
  const Csr& freeze() const;

  /// Bumped on every structural mutation; the Csr cache keys off it.
  std::uint64_t structure_version() const { return version_; }

  /// Source-node result width feeding this edge (w(src)).
  int src_width(EdgeId e) const { return node(edge(e).src).width; }

  /// Checks structural invariants; returns a human-readable list of
  /// violations (empty == valid): acyclicity, port arity/ordering, one
  /// in-edge per input port, outputs have no fanout, positive widths.
  std::vector<std::string> validate() const;

  /// Graphviz dot rendering with widths, signs and (optionally) per-node
  /// annotations, for debugging and the figure benches.
  std::string to_dot(
      const std::vector<std::string>& node_annotations = {}) const;

 private:
  static const std::string& empty_name();
  std::int32_t intern_name(std::string name);

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::string> names_;  ///< Interned name pool (see Node::name_id).
  std::unordered_map<std::string, std::int32_t> name_ids_;

  std::uint64_t version_ = 0;  ///< Structural mutation counter.
  mutable Csr csr_;
  mutable std::uint64_t csr_version_ = ~std::uint64_t{0};
};

}  // namespace dpmerge::dfg
