#include "dpmerge/dfg/random_graph.h"

#include <string>
#include <vector>

#include "dpmerge/dfg/builder.h"

namespace dpmerge::dfg {

Graph random_graph(Rng& rng, const RandomGraphOptions& opt) {
  Graph g;
  std::vector<NodeId> pool;  // candidate operand sources
  for (int i = 0; i < opt.num_inputs; ++i) {
    const int w = static_cast<int>(rng.uniform(opt.min_width, opt.max_width));
    pool.push_back(g.add_node(OpKind::Input, w, "in" + std::to_string(i)));
  }

  auto pick_operand = [&](NodeId dst_hint) {
    (void)dst_hint;
    const NodeId src =
        pool[static_cast<std::size_t>(rng.uniform(0, static_cast<std::int64_t>(pool.size()) - 1))];
    int w = g.node(src).width;
    if (rng.chance(opt.resize_edge_fraction)) {
      w = static_cast<int>(rng.uniform(opt.min_width, opt.max_width));
    }
    // Comparator results are 1-bit truths zero-padded to the node width; a
    // signed resize of one would reinterpret 1 as -1, so those edges are
    // always unsigned (rule dfg.sign.comparator).
    const Sign s = !is_comparator(g.node(src).kind) &&
                           rng.chance(opt.signed_edge_fraction)
                       ? Sign::Signed
                       : Sign::Unsigned;
    return Operand{src, w, s};
  };

  std::vector<NodeId> ops;
  for (int i = 0; i < opt.num_operators; ++i) {
    OpKind k = OpKind::Add;
    const double roll =
        static_cast<double>(rng.uniform(0, 9999)) / 10000.0;
    double acc = opt.mul_fraction;
    if (roll < acc) {
      k = OpKind::Mul;
    } else if (roll < (acc += opt.neg_fraction)) {
      k = OpKind::Neg;
    } else if (roll < (acc += opt.sub_fraction)) {
      k = OpKind::Sub;
    } else if (roll < (acc += opt.shl_fraction)) {
      k = OpKind::Shl;
    } else if (roll < (acc += opt.cmp_fraction)) {
      const std::int64_t pick = rng.uniform(0, 2);
      k = pick == 0 ? OpKind::LtS : pick == 1 ? OpKind::LtU : OpKind::Eq;
    }
    const int w = static_cast<int>(rng.uniform(opt.min_width, opt.max_width));
    const NodeId id = g.add_node(k, w);
    if (k == OpKind::Shl) {
      g.set_node_shift(id, static_cast<int>(rng.uniform(0, std::min(w, 6))));
    }
    const int arity = operand_count(k);
    for (int p = 0; p < arity; ++p) {
      const Operand o = pick_operand(id);
      g.add_edge(o.node, id, p, o.width, o.sign);
    }
    pool.push_back(id);
    ops.push_back(id);
  }

  // Give every sink (node without fanout) a primary output, so the graph is
  // well-formed and required precision is defined everywhere.
  int out_idx = 0;
  for (NodeId id : ops) {
    if (!g.node(id).out.empty()) continue;
    const int ow = static_cast<int>(rng.uniform(opt.min_width, opt.max_width));
    const NodeId o =
        g.add_node(OpKind::Output, ow, "out" + std::to_string(out_idx++));
    const Sign s = !is_comparator(g.node(id).kind) &&
                           rng.chance(opt.signed_edge_fraction)
                       ? Sign::Signed
                       : Sign::Unsigned;
    int ew = g.node(id).width;
    if (rng.chance(opt.resize_edge_fraction)) {
      ew = static_cast<int>(rng.uniform(opt.min_width, opt.max_width));
    }
    g.add_edge(id, o, 0, ew, s);
  }
  // Unused inputs also get an observer output so the graph stays connected
  // in spirit (analyses do not require it, but validation is simpler).
  for (NodeId id : g.inputs()) {
    if (!g.node(id).out.empty()) continue;
    const NodeId o =
        g.add_node(OpKind::Output, g.node(id).width,
                   "obs" + std::to_string(out_idx++));
    g.add_edge(id, o, 0, 0, Sign::Unsigned);
  }
  return g;
}

}  // namespace dpmerge::dfg
