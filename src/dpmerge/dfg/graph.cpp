#include "dpmerge/dfg/graph.h"

#include <algorithm>
#include <sstream>

namespace dpmerge::dfg {

bool is_operator(OpKind k) {
  switch (k) {
    case OpKind::Input:
    case OpKind::Output:
    case OpKind::Const:
      return false;
    default:
      return true;
  }
}

bool is_arith_operator(OpKind k) {
  return k == OpKind::Add || k == OpKind::Sub || k == OpKind::Mul ||
         k == OpKind::Neg || k == OpKind::Shl;
}

bool is_comparator(OpKind k) {
  return k == OpKind::LtS || k == OpKind::LtU || k == OpKind::Eq;
}

int operand_count(OpKind k) {
  switch (k) {
    case OpKind::Input:
    case OpKind::Const:
      return 0;
    case OpKind::Output:
    case OpKind::Neg:
    case OpKind::Shl:
    case OpKind::Extension:
      return 1;
    case OpKind::Add:
    case OpKind::Sub:
    case OpKind::Mul:
    case OpKind::LtS:
    case OpKind::LtU:
    case OpKind::Eq:
      return 2;
  }
  return 0;
}

std::string_view to_string(OpKind k) {
  switch (k) {
    case OpKind::Input:
      return "input";
    case OpKind::Output:
      return "output";
    case OpKind::Const:
      return "const";
    case OpKind::Add:
      return "+";
    case OpKind::Sub:
      return "-";
    case OpKind::Mul:
      return "*";
    case OpKind::Neg:
      return "neg";
    case OpKind::Shl:
      return "shl";
    case OpKind::LtS:
      return "lts";
    case OpKind::LtU:
      return "ltu";
    case OpKind::Eq:
      return "eq";
    case OpKind::Extension:
      return "ext";
  }
  return "?";
}

const std::string& Graph::empty_name() {
  static const std::string empty;
  return empty;
}

std::int32_t Graph::intern_name(std::string name) {
  if (name.empty()) return -1;
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(names_.size());
  name_ids_.emplace(name, id);
  names_.push_back(std::move(name));
  return id;
}

void Graph::reserve(int nodes, int edges) {
  nodes_.reserve(static_cast<std::size_t>(nodes));
  edges_.reserve(static_cast<std::size_t>(edges));
}

NodeId Graph::add_node(OpKind kind, int width, std::string name) {
  Node n;
  n.id = NodeId{node_count()};
  n.kind = kind;
  n.width = width;
  n.name_id = intern_name(std::move(name));
  nodes_.push_back(std::move(n));
  ++version_;
  return nodes_.back().id;
}

NodeId Graph::add_const(const BitVector& value, std::string name) {
  const NodeId id = add_node(OpKind::Const, value.width(), std::move(name));
  nodes_[static_cast<std::size_t>(id.value)].value = value;
  return id;
}

EdgeId Graph::add_edge(NodeId src, NodeId dst, int dst_port, int width,
                       Sign sign) {
  assert(src.valid() && dst.valid());
  Edge e;
  e.id = EdgeId{edge_count()};
  e.src = src;
  e.dst = dst;
  e.dst_port = dst_port;
  e.width = width == 0 ? node(src).width : width;
  e.sign = sign;
  edges_.push_back(e);

  auto& sn = nodes_[static_cast<std::size_t>(src.value)];
  sn.out.push_back(e.id);
  auto& dn = nodes_[static_cast<std::size_t>(dst.value)];
  if (static_cast<int>(dn.in.size()) <= dst_port) {
    dn.in.resize(static_cast<std::size_t>(dst_port) + 1, EdgeId{});
  }
  assert(!dn.in[static_cast<std::size_t>(dst_port)].valid() &&
         "input port already connected");
  dn.in[static_cast<std::size_t>(dst_port)] = e.id;
  ++version_;
  return e.id;
}

void Graph::set_node_width(NodeId id, int width) {
  assert(width > 0);
  nodes_[static_cast<std::size_t>(id.value)].width = width;
}

void Graph::set_node_ext_sign(NodeId id, Sign s) {
  nodes_[static_cast<std::size_t>(id.value)].ext_sign = s;
}

void Graph::set_node_shift(NodeId id, int shift) {
  assert(shift >= 0);
  nodes_[static_cast<std::size_t>(id.value)].shift = shift;
}

void Graph::set_edge_width(EdgeId id, int width) {
  assert(width > 0);
  edges_[static_cast<std::size_t>(id.value)].width = width;
}

void Graph::set_edge_sign(EdgeId id, Sign s) {
  edges_[static_cast<std::size_t>(id.value)].sign = s;
}

NodeId Graph::insert_extension_after(NodeId n, int ext_width, Sign ext_sign,
                                     int edge_width) {
  const NodeId ext = add_node(OpKind::Extension, ext_width);
  nodes_[static_cast<std::size_t>(ext.value)].ext_sign = ext_sign;

  // Move existing out-edges of n so they originate at ext. The n->ext edge is
  // added afterwards so it is not itself moved.
  auto moved = nodes_[static_cast<std::size_t>(n.value)].out;
  nodes_[static_cast<std::size_t>(n.value)].out.clear();
  for (EdgeId eid : moved) {
    edges_[static_cast<std::size_t>(eid.value)].src = ext;
    nodes_[static_cast<std::size_t>(ext.value)].out.push_back(eid);
  }
  ++version_;
  add_edge(n, ext, 0, edge_width, ext_sign);
  return ext;
}

NodeId Graph::insert_extension_retarget(NodeId n, int ext_width,
                                        Sign ext_sign,
                                        const std::vector<EdgeId>& moved) {
  const NodeId ext = add_node(OpKind::Extension, ext_width);
  nodes_[static_cast<std::size_t>(ext.value)].ext_sign = ext_sign;
  auto& n_out = nodes_[static_cast<std::size_t>(n.value)].out;
  for (EdgeId eid : moved) {
    const auto it = std::find(n_out.begin(), n_out.end(), eid);
    assert(it != n_out.end() && "edge is not an out-edge of n");
    n_out.erase(it);
    edges_[static_cast<std::size_t>(eid.value)].src = ext;
    nodes_[static_cast<std::size_t>(ext.value)].out.push_back(eid);
  }
  ++version_;
  add_edge(n, ext, 0, node(n).width, ext_sign);
  return ext;
}

std::vector<NodeId> Graph::inputs() const {
  std::vector<NodeId> r;
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::Input) r.push_back(n.id);
  }
  return r;
}

std::vector<NodeId> Graph::outputs() const {
  std::vector<NodeId> r;
  for (const auto& n : nodes_) {
    if (n.kind == OpKind::Output) r.push_back(n.id);
  }
  return r;
}

void Graph::topo_order_into(std::vector<NodeId>& order,
                            TopoScratch& scratch) const {
  auto& pending = scratch.pending;
  auto& ready = scratch.ready;
  pending.assign(nodes_.size(), 0);
  ready.clear();
  order.clear();
  order.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    int cnt = 0;
    for (EdgeId e : n.in) {
      if (e.valid()) ++cnt;
    }
    pending[static_cast<std::size_t>(n.id.value)] = cnt;
    if (cnt == 0) ready.push_back(n.id);
  }
  while (!ready.empty()) {
    const NodeId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (EdgeId eid : node(id).out) {
      const NodeId d = edge(eid).dst;
      if (--pending[static_cast<std::size_t>(d.value)] == 0) {
        ready.push_back(d);
      }
    }
  }
}

std::vector<NodeId> Graph::topo_order() const {
  std::vector<NodeId> order;
  TopoScratch scratch;
  topo_order_into(order, scratch);
  assert(order.size() == nodes_.size() && "graph has a cycle");
  return order;
}

std::vector<std::string> Graph::validate() const {
  std::vector<std::string> errs;
  auto err = [&errs](std::string m) { errs.push_back(std::move(m)); };
  // The tag string is built lazily — only when a violation is reported — so
  // validating a clean 100k-node graph stays allocation-free per node.
  auto tag = [](const Node& n) {
    return "node " + std::to_string(n.id.value) + " (" +
           std::string(to_string(n.kind)) + ")";
  };

  for (const auto& n : nodes_) {
    if (n.width <= 0) err(tag(n) + ": non-positive width");
    const int want = operand_count(n.kind);
    if (static_cast<int>(n.in.size()) != want) {
      err(tag(n) + ": expected " + std::to_string(want) + " operands, has " +
          std::to_string(n.in.size()));
    }
    for (std::size_t p = 0; p < n.in.size(); ++p) {
      if (!n.in[p].valid()) {
        err(tag(n) + ": input port " + std::to_string(p) + " unconnected");
      } else if (edge(n.in[p]).dst != n.id ||
                 edge(n.in[p]).dst_port != static_cast<int>(p)) {
        err(tag(n) + ": inconsistent in-edge bookkeeping");
      }
    }
    if (n.kind == OpKind::Output && !n.out.empty()) {
      err(tag(n) + ": output node has fanout");
    }
    for (EdgeId eid : n.out) {
      if (edge(eid).src != n.id) err(tag(n) + ": inconsistent out-edge");
    }
    if (n.kind == OpKind::Const && n.value.width() != n.width) {
      err(tag(n) + ": const value width mismatch");
    }
  }
  for (const auto& e : edges_) {
    if (e.width <= 0) {
      err("edge " + std::to_string(e.id.value) + ": non-positive width");
    }
  }
  // Acyclicity, via the shared allocation-free Kahn sweep (a cycle shows up
  // as a partial order).
  {
    std::vector<NodeId> order;
    TopoScratch scratch;
    topo_order_into(order, scratch);
    if (order.size() != nodes_.size()) err("graph contains a cycle");
  }
  return errs;
}

std::string Graph::to_dot(const std::vector<std::string>& annotations) const {
  std::ostringstream os;
  os << "digraph dfg {\n  rankdir=TB;\n";
  for (const auto& n : nodes_) {
    os << "  n" << n.id.value << " [label=\"";
    if (!name(n).empty()) os << name(n) << "\\n";
    os << to_string(n.kind) << " w=" << n.width;
    if (n.kind == OpKind::Extension) os << " t=" << to_string(n.ext_sign);
    if (n.kind == OpKind::Shl) os << " <<" << n.shift;
    if (static_cast<std::size_t>(n.id.value) < annotations.size() &&
        !annotations[static_cast<std::size_t>(n.id.value)].empty()) {
      os << "\\n" << annotations[static_cast<std::size_t>(n.id.value)];
    }
    os << "\"";
    if (n.kind == OpKind::Input || n.kind == OpKind::Output) {
      os << " shape=box";
    }
    os << "];\n";
  }
  for (const auto& e : edges_) {
    os << "  n" << e.src.value << " -> n" << e.dst.value << " [label=\"w="
       << e.width << (e.sign == Sign::Signed ? " s" : " u") << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace dpmerge::dfg
