#pragma once

#include <map>
#include <string>
#include <vector>

#include "dpmerge/dfg/graph.h"
#include "dpmerge/support/rng.h"

namespace dpmerge::dfg {

/// Bit-accurate reference interpreter for DFGs, implementing the width and
/// signedness semantics of Section 2.2 exactly:
///
///   carried(e) = resize(result(src(e)), w(e), t(e))
///   operand    = resize(carried(e), w(N), t(e))        for arith operators
///   result(N)  = op(operands) mod 2^w(N)
///
/// Extension nodes apply Definition 5.5 instead (their own <w(N), t(N)>
/// governs the final resize). This interpreter defines "functionality" for
/// every safety theorem in the paper; all transformation and synthesis
/// equivalence tests compare against it.
class Evaluator {
 public:
  explicit Evaluator(const Graph& g);

  /// `inputs[i]` is the stimulus for the i-th Input node in `g.inputs()`
  /// order and must match that node's width.
  /// Returns the value at every node's output port, indexed by NodeId.
  std::vector<BitVector> run(const std::vector<BitVector>& inputs) const;

  /// Values at Output nodes only, in `g.outputs()` order.
  std::vector<BitVector> run_outputs(const std::vector<BitVector>& inputs) const;

  /// The operand value delivered into (dst, dst_port) of `e` given the
  /// already-computed node results. Exposed for the analyses' property tests.
  BitVector operand_via_edge(EdgeId e,
                             const std::vector<BitVector>& results) const;

  /// The value carried on edge `e` itself (after the first resize).
  BitVector carried_on_edge(EdgeId e,
                            const std::vector<BitVector>& results) const;

  /// Uniformly random stimulus vector for the graph's inputs.
  std::vector<BitVector> random_inputs(Rng& rng) const;

  const Graph& graph() const { return g_; }

 private:
  const Graph& g_;
  std::vector<NodeId> order_;
  std::vector<NodeId> input_order_;
};

/// True iff the two graphs compute identical primary-output values on
/// `trials` random stimuli (and on the all-zero / all-one patterns). The
/// graphs must have the same inputs and outputs, by name, with equal widths;
/// stimuli are paired by input name so transformed graphs with re-ordered
/// node ids still compare correctly.
bool equivalent_by_simulation(const Graph& a, const Graph& b, int trials,
                              Rng& rng, std::string* first_mismatch = nullptr);

}  // namespace dpmerge::dfg
