#include "dpmerge/frontend/parser.h"

#include <cctype>
#include <map>
#include <stdexcept>
#include <vector>

#include "dpmerge/check/check.h"
#include "dpmerge/obs/obs.h"

namespace dpmerge::frontend {

namespace {

using dfg::Graph;
using dfg::NodeId;
using dfg::OpKind;

// ---------------------------------------------------------------- lexer --

enum class Tok {
  Ident,
  Int,
  Plus,
  Minus,
  Star,
  Shl,
  Lt,
  EqEq,
  LParen,
  RParen,
  Colon,
  Assign,
  Newline,
  End,
};

struct Token {
  Tok kind;
  std::string text;
  std::int64_t value = 0;
  int line = 0;
  int col = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& src) : src_(src) {}

  Token next() {
    skip_space_and_comments();
    Token t;
    t.line = line_;
    t.col = col_;
    if (pos_ >= src_.size()) {
      t.kind = Tok::End;
      return t;
    }
    const char c = src_[pos_];
    if (c == '\n') {
      advance();
      t.kind = Tok::Newline;
      return t;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        t.text.push_back(src_[pos_]);
        advance();
      }
      t.kind = Tok::Ident;
      return t;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        t.text.push_back(src_[pos_]);
        advance();
      }
      t.kind = Tok::Int;
      t.value = std::stoll(t.text);
      return t;
    }
    auto two = [&](char a, char b) {
      return c == a && pos_ + 1 < src_.size() && src_[pos_ + 1] == b;
    };
    if (two('<', '<')) {
      advance();
      advance();
      t.kind = Tok::Shl;
      return t;
    }
    if (two('=', '=')) {
      advance();
      advance();
      t.kind = Tok::EqEq;
      return t;
    }
    advance();
    switch (c) {
      case '+':
        t.kind = Tok::Plus;
        return t;
      case '-':
        t.kind = Tok::Minus;
        return t;
      case '*':
        t.kind = Tok::Star;
        return t;
      case '<':
        t.kind = Tok::Lt;
        return t;
      case '(':
        t.kind = Tok::LParen;
        return t;
      case ')':
        t.kind = Tok::RParen;
        return t;
      case ':':
        t.kind = Tok::Colon;
        return t;
      case '=':
        t.kind = Tok::Assign;
        return t;
      default:
        throw ParseError(t.line, t.col, std::string(1, c),
                         "unexpected character '" + std::string(1, c) + "'");
    }
  }

 private:
  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }
  void skip_space_and_comments() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
      } else if (c == ' ' || c == '\t' || c == '\r') {
        advance();
      } else {
        break;
      }
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

// --------------------------------------------------------------- parser --

/// An elaborated expression value: a DFG node plus the width/sign the
/// expression logically has (the node's width equals `width`).
struct Value {
  NodeId node;
  int width;
  Sign sign;
};

class Parser {
 public:
  explicit Parser(const std::string& src) : lex_(src) { shift(); }

  CompileResult run() {
    CompileResult res;
    while (cur_.kind != Tok::End) {
      if (cur_.kind == Tok::Newline) {
        shift();
        continue;
      }
      const std::string kw = expect_ident("statement keyword");
      if (kw == "design") {
        res.name = expect_ident("design name");
      } else if (kw == "input") {
        statement_input();
      } else if (kw == "let") {
        statement_binding(/*is_output=*/false);
      } else if (kw == "output") {
        statement_binding(/*is_output=*/true);
      } else {
        fail("unknown statement '" + kw + "'");
      }
      if (cur_.kind != Tok::End) expect(Tok::Newline, "end of statement");
    }
    if (g_.outputs().empty()) fail("design has no outputs");
    const auto errs = g_.validate();
    if (!errs.empty()) fail("internal: invalid graph: " + errs.front());
    res.graph = std::move(g_);
    return res;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(cur_.line, cur_.col, cur_.text, msg);
  }

  void shift() { cur_ = lex_.next(); }

  void expect(Tok k, const char* what) {
    if (cur_.kind != k) fail(std::string("expected ") + what);
    shift();
  }

  std::string expect_ident(const char* what) {
    if (cur_.kind != Tok::Ident) fail(std::string("expected ") + what);
    std::string s = cur_.text;
    shift();
    return s;
  }

  /// Parses ": s8" / ": u12" type annotations.
  std::pair<int, Sign> parse_type() {
    expect(Tok::Colon, "':' and a type like s8 or u12");
    const std::string t = expect_ident("type like s8 or u12");
    if (t.size() < 2 || (t[0] != 's' && t[0] != 'u')) {
      fail("bad type '" + t + "' (use s<width> or u<width>)");
    }
    for (std::size_t i = 1; i < t.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(t[i]))) {
        fail("bad type '" + t + "'");
      }
    }
    const int w = std::stoi(t.substr(1));
    if (w <= 0) fail("width must be positive in '" + t + "'");
    return {w, t[0] == 's' ? Sign::Signed : Sign::Unsigned};
  }

  void define(const std::string& name, Value v) {
    if (!scope_.emplace(name, v).second) {
      fail("redefinition of '" + name + "'");
    }
  }

  void statement_input() {
    const std::string name = expect_ident("input name");
    const auto [w, s] = parse_type();
    const NodeId id = g_.add_node(OpKind::Input, w, name);
    g_.set_node_ext_sign(id, s);
    define(name, Value{id, w, s});
  }

  void statement_binding(bool is_output) {
    const std::string name = expect_ident(is_output ? "output name"
                                                    : "binding name");
    bool has_type = cur_.kind == Tok::Colon;
    int dw = 0;
    Sign ds = Sign::Unsigned;
    if (has_type) std::tie(dw, ds) = parse_type();
    if (is_output && !has_type) fail("outputs must declare a type");
    expect(Tok::Assign, "'='");
    Value v = parse_cmp();
    if (is_output) {
      const NodeId out = g_.add_node(OpKind::Output, dw, name);
      // The connection resizes per the *expression's* signedness; the
      // declared u/s only documents how the consumer reads the port.
      g_.add_edge(v.node, out, 0, dw, v.sign);
    } else {
      if (has_type) {
        // Declared intermediates resize through an explicit Extension node
        // (this is how truncate-then-extend bottlenecks are written).
        const NodeId ext = g_.add_node(OpKind::Extension, dw);
        g_.set_node_ext_sign(ext, v.sign);
        g_.add_edge(v.node, ext, 0, v.width, v.sign);
        v = Value{ext, dw, ds};
      }
      define(name, v);
    }
  }

  // expression parsing, loosest binding first
  Value parse_cmp() {
    Value lhs = parse_addsub();
    if (cur_.kind != Tok::Lt && cur_.kind != Tok::EqEq) return lhs;
    const Tok op = cur_.kind;
    shift();
    Value rhs = parse_addsub();
    // Compare at a common lossless width; a mixed-sign compare widens the
    // unsigned side by one and compares signed.
    bool cmp_signed = lhs.sign == Sign::Signed || rhs.sign == Sign::Signed;
    int w = std::max(lhs.width + (lhs.sign == Sign::Unsigned && cmp_signed),
                     rhs.width + (rhs.sign == Sign::Unsigned && cmp_signed));
    const OpKind kind = op == Tok::EqEq  ? OpKind::Eq
                        : cmp_signed     ? OpKind::LtS
                                         : OpKind::LtU;
    const NodeId id = g_.add_node(kind, w);
    g_.add_edge(lhs.node, id, 0, w, lhs.sign);
    g_.add_edge(rhs.node, id, 1, w, rhs.sign);
    return Value{id, w, Sign::Unsigned};  // 1-bit result in w bits; see below
  }

  Value parse_addsub() {
    Value lhs = parse_mul();
    while (cur_.kind == Tok::Plus || cur_.kind == Tok::Minus) {
      const bool sub = cur_.kind == Tok::Minus;
      shift();
      const Value rhs = parse_mul();
      const Sign s =
          (sub || lhs.sign == Sign::Signed || rhs.sign == Sign::Signed)
              ? Sign::Signed
              : Sign::Unsigned;
      const int w = std::max(lhs.width, rhs.width) + 1;
      const NodeId id = g_.add_node(sub ? OpKind::Sub : OpKind::Add, w);
      g_.add_edge(lhs.node, id, 0, w, lhs.sign);
      g_.add_edge(rhs.node, id, 1, w, rhs.sign);
      lhs = Value{id, w, s};
    }
    return lhs;
  }

  Value parse_mul() {
    Value lhs = parse_shift();
    while (cur_.kind == Tok::Star) {
      shift();
      const Value rhs = parse_shift();
      const Sign s = lhs.sign | rhs.sign;
      const int w = lhs.width + rhs.width;
      const NodeId id = g_.add_node(OpKind::Mul, w);
      g_.add_edge(lhs.node, id, 0, w, lhs.sign);
      g_.add_edge(rhs.node, id, 1, w, rhs.sign);
      lhs = Value{id, w, s};
    }
    return lhs;
  }

  Value parse_shift() {
    Value lhs = parse_unary();
    while (cur_.kind == Tok::Shl) {
      shift();
      if (cur_.kind != Tok::Int) fail("shift amount must be a literal");
      const int s = static_cast<int>(cur_.value);
      shift();
      const int w = lhs.width + s;
      const NodeId id = g_.add_node(OpKind::Shl, w);
      g_.set_node_shift(id, s);
      g_.add_edge(lhs.node, id, 0, w, lhs.sign);
      lhs = Value{id, w, lhs.sign};
    }
    return lhs;
  }

  Value parse_unary() {
    if (cur_.kind == Tok::Minus) {
      shift();
      const Value v = parse_unary();
      const int w = v.width + 1;
      const NodeId id = g_.add_node(OpKind::Neg, w);
      g_.add_edge(v.node, id, 0, w, v.sign);
      return Value{id, w, Sign::Signed};
    }
    return parse_primary();
  }

  Value parse_primary() {
    if (cur_.kind == Tok::LParen) {
      shift();
      const Value v = parse_cmp();
      expect(Tok::RParen, "')'");
      return v;
    }
    if (cur_.kind == Tok::Int) {
      const std::int64_t val = cur_.value;
      shift();
      int w = 1;
      while ((val >> w) != 0) ++w;
      const NodeId id = g_.add_const(BitVector::from_int(w, val));
      return Value{id, w, Sign::Unsigned};
    }
    if (cur_.kind == Tok::Ident) {
      const auto it = scope_.find(cur_.text);
      if (it == scope_.end()) fail("unknown identifier '" + cur_.text + "'");
      shift();
      return it->second;
    }
    fail("expected an expression");
  }

  Lexer lex_;
  Token cur_;
  Graph g_;
  std::map<std::string, Value> scope_;
};

}  // namespace

ParseError::ParseError(int line, int column, std::string token,
                       const std::string& msg)
    : std::invalid_argument("line " + std::to_string(line) + ":" +
                            std::to_string(column) + ": " + msg),
      line_(line),
      column_(column),
      token_(std::move(token)) {}

check::Diagnostic ParseError::diagnostic() const {
  return check::Diagnostic{check::Severity::Error, "frontend.parse", what(),
                           check::Locus{"line", line_, column_, token_}};
}

CompileResult compile(const std::string& source) {
  obs::Span span("frontend.compile");
  CompileResult res = Parser(source).run();
  check::enforce(res.graph, "frontend.compile");
  if (obs::StatSink* sink = obs::current_sink()) {
    sink->add("frontend.source_bytes",
              static_cast<std::int64_t>(source.size()));
    sink->add("frontend.nodes", res.graph.node_count());
    sink->add("frontend.edges", res.graph.edge_count());
  }
  return res;
}

std::optional<CompileResult> compile_or_diagnose(const std::string& source,
                                                 check::CheckReport& report) {
  try {
    return compile(source);
  } catch (const ParseError& e) {
    const check::Diagnostic d = e.diagnostic();
    report.add(d.severity, d.rule, d.message, d.locus);
    return std::nullopt;
  }
}

}  // namespace dpmerge::frontend
