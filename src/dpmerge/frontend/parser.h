#pragma once

#include <optional>
#include <stdexcept>
#include <string>

#include "dpmerge/check/diagnostic.h"
#include "dpmerge/dfg/graph.h"

namespace dpmerge::frontend {

/// Compile-time failure with a precise source location. The what() message
/// keeps the historical "line L:C: msg" shape; the structured fields let
/// tooling (dpmerge-lint, editors) point at the offending token directly.
class ParseError : public std::invalid_argument {
 public:
  ParseError(int line, int column, std::string token, const std::string& msg);

  int line() const { return line_; }
  int column() const { return column_; }
  /// Text of the token the parser was looking at; may be empty (e.g. at
  /// end-of-input).
  const std::string& token() const { return token_; }

  /// The failure as a structured finding: rule "frontend.parse", locus
  /// kind "line" with id = line, aux = column, name = token.
  check::Diagnostic diagnostic() const;

 private:
  int line_;
  int column_;
  std::string token_;
};

/// A miniature RTL-expression language that compiles to DFGs — the form the
/// paper's datapath testcases originally take. One statement per line, `#`
/// comments:
///
///   design fir                      # optional name
///   input  x0 : s8                  # signed 8-bit input
///   input  k  : u4                  # unsigned 4-bit input
///   let    t  = 3 * x0 + (k << 2)   # intermediate, width inferred
///   let    u : s10 = t - x0         # intermediate with declared width
///   output y  : s16 = u + t         # outputs must declare their width
///   output f  : u1  = t < u         # comparisons give unsigned 1-bit
///
/// Expression grammar (loosest to tightest):
///   cmp    := addsub (('<' | '==') addsub)?
///   addsub := muldiv (('+' | '-') muldiv)*
///   muldiv := shift ('*' shift)*
///   shift  := unary ('<<' INT)*
///   unary  := '-' unary | primary
///   primary:= IDENT | INT | '(' cmp ')'
///
/// Width/sign inference (Verilog-in-spirit, lossless by construction):
///   +,-      -> max(w1, w2) + 1; signed if either side is, or op is '-'
///   *        -> w1 + w2; signed if either side is
///   unary -  -> w + 1, signed
///   << k     -> w + k, same sign
///   <, ==    -> u1 (operands compared at a common lossless width;
///               a mixed-sign compare widens the unsigned side)
///   literal  -> minimal width; negative literals are signed
/// A declared width on `let`/`output` resizes the expression result
/// (truncating or extending per the expression's signedness) — this is how
/// the truncate-then-extend patterns the paper studies are written.
struct CompileResult {
  std::string name;
  dfg::Graph graph;
};

/// Throws ParseError (an std::invalid_argument, so existing catch sites
/// keep working) with a line/column message on errors (syntax, unknown or
/// duplicate identifiers, zero widths, shift by negative amounts).
CompileResult compile(const std::string& source);

/// Non-throwing variant: on failure returns std::nullopt and appends the
/// failure to `report` as a "frontend.parse" Error diagnostic.
std::optional<CompileResult> compile_or_diagnose(const std::string& source,
                                                 check::CheckReport& report);

}  // namespace dpmerge::frontend
