#pragma once

#include <string>

#include "dpmerge/dfg/graph.h"

namespace dpmerge::frontend {

/// A miniature RTL-expression language that compiles to DFGs — the form the
/// paper's datapath testcases originally take. One statement per line, `#`
/// comments:
///
///   design fir                      # optional name
///   input  x0 : s8                  # signed 8-bit input
///   input  k  : u4                  # unsigned 4-bit input
///   let    t  = 3 * x0 + (k << 2)   # intermediate, width inferred
///   let    u : s10 = t - x0         # intermediate with declared width
///   output y  : s16 = u + t         # outputs must declare their width
///   output f  : u1  = t < u         # comparisons give unsigned 1-bit
///
/// Expression grammar (loosest to tightest):
///   cmp    := addsub (('<' | '==') addsub)?
///   addsub := muldiv (('+' | '-') muldiv)*
///   muldiv := shift ('*' shift)*
///   shift  := unary ('<<' INT)*
///   unary  := '-' unary | primary
///   primary:= IDENT | INT | '(' cmp ')'
///
/// Width/sign inference (Verilog-in-spirit, lossless by construction):
///   +,-      -> max(w1, w2) + 1; signed if either side is, or op is '-'
///   *        -> w1 + w2; signed if either side is
///   unary -  -> w + 1, signed
///   << k     -> w + k, same sign
///   <, ==    -> u1 (operands compared at a common lossless width;
///               a mixed-sign compare widens the unsigned side)
///   literal  -> minimal width; negative literals are signed
/// A declared width on `let`/`output` resizes the expression result
/// (truncating or extending per the expression's signedness) — this is how
/// the truncate-then-extend patterns the paper studies are written.
struct CompileResult {
  std::string name;
  dfg::Graph graph;
};

/// Throws std::invalid_argument with a line/column message on errors
/// (syntax, unknown or duplicate identifiers, zero widths, shift by
/// negative amounts).
CompileResult compile(const std::string& source);

}  // namespace dpmerge::frontend
