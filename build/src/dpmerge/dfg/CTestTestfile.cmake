# CMake generated Testfile for 
# Source directory: /root/repo/src/dpmerge/dfg
# Build directory: /root/repo/build/src/dpmerge/dfg
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
