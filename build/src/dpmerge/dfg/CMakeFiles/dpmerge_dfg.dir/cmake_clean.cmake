file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_dfg.dir/eval.cpp.o"
  "CMakeFiles/dpmerge_dfg.dir/eval.cpp.o.d"
  "CMakeFiles/dpmerge_dfg.dir/graph.cpp.o"
  "CMakeFiles/dpmerge_dfg.dir/graph.cpp.o.d"
  "CMakeFiles/dpmerge_dfg.dir/io.cpp.o"
  "CMakeFiles/dpmerge_dfg.dir/io.cpp.o.d"
  "CMakeFiles/dpmerge_dfg.dir/random_graph.cpp.o"
  "CMakeFiles/dpmerge_dfg.dir/random_graph.cpp.o.d"
  "libdpmerge_dfg.a"
  "libdpmerge_dfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_dfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
