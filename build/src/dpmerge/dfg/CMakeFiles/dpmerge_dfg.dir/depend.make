# Empty dependencies file for dpmerge_dfg.
# This may be replaced when dependencies are built.
