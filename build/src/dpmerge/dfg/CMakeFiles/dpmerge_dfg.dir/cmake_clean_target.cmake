file(REMOVE_RECURSE
  "libdpmerge_dfg.a"
)
