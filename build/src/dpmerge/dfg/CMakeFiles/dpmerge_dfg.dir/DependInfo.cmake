
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpmerge/dfg/eval.cpp" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/eval.cpp.o" "gcc" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/eval.cpp.o.d"
  "/root/repo/src/dpmerge/dfg/graph.cpp" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/graph.cpp.o" "gcc" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/graph.cpp.o.d"
  "/root/repo/src/dpmerge/dfg/io.cpp" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/io.cpp.o" "gcc" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/io.cpp.o.d"
  "/root/repo/src/dpmerge/dfg/random_graph.cpp" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/random_graph.cpp.o" "gcc" "src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/random_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpmerge/support/CMakeFiles/dpmerge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
