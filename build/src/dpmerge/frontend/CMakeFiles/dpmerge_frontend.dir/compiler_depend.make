# Empty compiler generated dependencies file for dpmerge_frontend.
# This may be replaced when dependencies are built.
