file(REMOVE_RECURSE
  "libdpmerge_frontend.a"
)
