file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_frontend.dir/parser.cpp.o"
  "CMakeFiles/dpmerge_frontend.dir/parser.cpp.o.d"
  "libdpmerge_frontend.a"
  "libdpmerge_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
