
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpmerge/transform/const_fold.cpp" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/const_fold.cpp.o" "gcc" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/const_fold.cpp.o.d"
  "/root/repo/src/dpmerge/transform/cse.cpp" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/cse.cpp.o" "gcc" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/cse.cpp.o.d"
  "/root/repo/src/dpmerge/transform/rebalance.cpp" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/rebalance.cpp.o" "gcc" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/rebalance.cpp.o.d"
  "/root/repo/src/dpmerge/transform/width_prune.cpp" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/width_prune.cpp.o" "gcc" "src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/width_prune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpmerge/analysis/CMakeFiles/dpmerge_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/cluster/CMakeFiles/dpmerge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/support/CMakeFiles/dpmerge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
