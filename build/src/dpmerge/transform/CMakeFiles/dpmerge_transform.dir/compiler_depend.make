# Empty compiler generated dependencies file for dpmerge_transform.
# This may be replaced when dependencies are built.
