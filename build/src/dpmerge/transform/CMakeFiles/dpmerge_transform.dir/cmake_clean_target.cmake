file(REMOVE_RECURSE
  "libdpmerge_transform.a"
)
