file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_transform.dir/const_fold.cpp.o"
  "CMakeFiles/dpmerge_transform.dir/const_fold.cpp.o.d"
  "CMakeFiles/dpmerge_transform.dir/cse.cpp.o"
  "CMakeFiles/dpmerge_transform.dir/cse.cpp.o.d"
  "CMakeFiles/dpmerge_transform.dir/rebalance.cpp.o"
  "CMakeFiles/dpmerge_transform.dir/rebalance.cpp.o.d"
  "CMakeFiles/dpmerge_transform.dir/width_prune.cpp.o"
  "CMakeFiles/dpmerge_transform.dir/width_prune.cpp.o.d"
  "libdpmerge_transform.a"
  "libdpmerge_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
