# Empty dependencies file for dpmerge_opt.
# This may be replaced when dependencies are built.
