file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_opt.dir/timing_opt.cpp.o"
  "CMakeFiles/dpmerge_opt.dir/timing_opt.cpp.o.d"
  "libdpmerge_opt.a"
  "libdpmerge_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
