file(REMOVE_RECURSE
  "libdpmerge_opt.a"
)
