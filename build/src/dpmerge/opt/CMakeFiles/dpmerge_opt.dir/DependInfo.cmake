
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpmerge/opt/timing_opt.cpp" "src/dpmerge/opt/CMakeFiles/dpmerge_opt.dir/timing_opt.cpp.o" "gcc" "src/dpmerge/opt/CMakeFiles/dpmerge_opt.dir/timing_opt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/support/CMakeFiles/dpmerge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
