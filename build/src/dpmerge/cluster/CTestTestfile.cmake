# CMake generated Testfile for 
# Source directory: /root/repo/src/dpmerge/cluster
# Build directory: /root/repo/build/src/dpmerge/cluster
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
