# Empty compiler generated dependencies file for dpmerge_cluster.
# This may be replaced when dependencies are built.
