file(REMOVE_RECURSE
  "libdpmerge_cluster.a"
)
