file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_cluster.dir/clusterer.cpp.o"
  "CMakeFiles/dpmerge_cluster.dir/clusterer.cpp.o.d"
  "CMakeFiles/dpmerge_cluster.dir/flatten.cpp.o"
  "CMakeFiles/dpmerge_cluster.dir/flatten.cpp.o.d"
  "CMakeFiles/dpmerge_cluster.dir/partition.cpp.o"
  "CMakeFiles/dpmerge_cluster.dir/partition.cpp.o.d"
  "libdpmerge_cluster.a"
  "libdpmerge_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
