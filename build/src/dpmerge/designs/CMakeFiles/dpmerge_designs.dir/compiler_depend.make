# Empty compiler generated dependencies file for dpmerge_designs.
# This may be replaced when dependencies are built.
