file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_designs.dir/figures.cpp.o"
  "CMakeFiles/dpmerge_designs.dir/figures.cpp.o.d"
  "CMakeFiles/dpmerge_designs.dir/kernels.cpp.o"
  "CMakeFiles/dpmerge_designs.dir/kernels.cpp.o.d"
  "CMakeFiles/dpmerge_designs.dir/testcases.cpp.o"
  "CMakeFiles/dpmerge_designs.dir/testcases.cpp.o.d"
  "libdpmerge_designs.a"
  "libdpmerge_designs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_designs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
