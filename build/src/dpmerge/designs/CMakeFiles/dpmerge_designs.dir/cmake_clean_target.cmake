file(REMOVE_RECURSE
  "libdpmerge_designs.a"
)
