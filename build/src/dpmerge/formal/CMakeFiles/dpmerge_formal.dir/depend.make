# Empty dependencies file for dpmerge_formal.
# This may be replaced when dependencies are built.
