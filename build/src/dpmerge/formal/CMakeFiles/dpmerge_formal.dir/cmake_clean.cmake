file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_formal.dir/bdd.cpp.o"
  "CMakeFiles/dpmerge_formal.dir/bdd.cpp.o.d"
  "CMakeFiles/dpmerge_formal.dir/equiv.cpp.o"
  "CMakeFiles/dpmerge_formal.dir/equiv.cpp.o.d"
  "libdpmerge_formal.a"
  "libdpmerge_formal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
