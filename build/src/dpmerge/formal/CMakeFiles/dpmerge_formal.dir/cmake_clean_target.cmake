file(REMOVE_RECURSE
  "libdpmerge_formal.a"
)
