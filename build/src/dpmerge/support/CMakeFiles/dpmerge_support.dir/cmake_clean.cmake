file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_support.dir/bitvector.cpp.o"
  "CMakeFiles/dpmerge_support.dir/bitvector.cpp.o.d"
  "libdpmerge_support.a"
  "libdpmerge_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
