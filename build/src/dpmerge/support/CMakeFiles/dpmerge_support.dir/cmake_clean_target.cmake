file(REMOVE_RECURSE
  "libdpmerge_support.a"
)
