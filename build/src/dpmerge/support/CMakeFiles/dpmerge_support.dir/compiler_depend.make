# Empty compiler generated dependencies file for dpmerge_support.
# This may be replaced when dependencies are built.
