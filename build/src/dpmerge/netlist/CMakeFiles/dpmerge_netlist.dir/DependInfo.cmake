
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dpmerge/netlist/cell.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/cell.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/cell.cpp.o.d"
  "/root/repo/src/dpmerge/netlist/netlist.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/netlist.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/netlist.cpp.o.d"
  "/root/repo/src/dpmerge/netlist/sim.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/sim.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/sim.cpp.o.d"
  "/root/repo/src/dpmerge/netlist/simplify.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/simplify.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/simplify.cpp.o.d"
  "/root/repo/src/dpmerge/netlist/sta.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/sta.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/sta.cpp.o.d"
  "/root/repo/src/dpmerge/netlist/verilog.cpp" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/verilog.cpp.o" "gcc" "src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpmerge/support/CMakeFiles/dpmerge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
