file(REMOVE_RECURSE
  "libdpmerge_netlist.a"
)
