file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_netlist.dir/cell.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/cell.cpp.o.d"
  "CMakeFiles/dpmerge_netlist.dir/netlist.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/netlist.cpp.o.d"
  "CMakeFiles/dpmerge_netlist.dir/sim.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/sim.cpp.o.d"
  "CMakeFiles/dpmerge_netlist.dir/simplify.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/simplify.cpp.o.d"
  "CMakeFiles/dpmerge_netlist.dir/sta.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/sta.cpp.o.d"
  "CMakeFiles/dpmerge_netlist.dir/verilog.cpp.o"
  "CMakeFiles/dpmerge_netlist.dir/verilog.cpp.o.d"
  "libdpmerge_netlist.a"
  "libdpmerge_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
