# Empty compiler generated dependencies file for dpmerge_netlist.
# This may be replaced when dependencies are built.
