file(REMOVE_RECURSE
  "libdpmerge_synth.a"
)
