# Empty dependencies file for dpmerge_synth.
# This may be replaced when dependencies are built.
