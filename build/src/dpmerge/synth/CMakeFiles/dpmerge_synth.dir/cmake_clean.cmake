file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_synth.dir/cluster_synth.cpp.o"
  "CMakeFiles/dpmerge_synth.dir/cluster_synth.cpp.o.d"
  "CMakeFiles/dpmerge_synth.dir/cpa.cpp.o"
  "CMakeFiles/dpmerge_synth.dir/cpa.cpp.o.d"
  "CMakeFiles/dpmerge_synth.dir/csa_tree.cpp.o"
  "CMakeFiles/dpmerge_synth.dir/csa_tree.cpp.o.d"
  "CMakeFiles/dpmerge_synth.dir/flow.cpp.o"
  "CMakeFiles/dpmerge_synth.dir/flow.cpp.o.d"
  "CMakeFiles/dpmerge_synth.dir/verify.cpp.o"
  "CMakeFiles/dpmerge_synth.dir/verify.cpp.o.d"
  "libdpmerge_synth.a"
  "libdpmerge_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
