# Empty compiler generated dependencies file for dpmerge_analysis.
# This may be replaced when dependencies are built.
