file(REMOVE_RECURSE
  "libdpmerge_analysis.a"
)
