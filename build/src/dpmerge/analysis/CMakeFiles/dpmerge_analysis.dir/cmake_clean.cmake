file(REMOVE_RECURSE
  "CMakeFiles/dpmerge_analysis.dir/huffman.cpp.o"
  "CMakeFiles/dpmerge_analysis.dir/huffman.cpp.o.d"
  "CMakeFiles/dpmerge_analysis.dir/info_content.cpp.o"
  "CMakeFiles/dpmerge_analysis.dir/info_content.cpp.o.d"
  "CMakeFiles/dpmerge_analysis.dir/required_precision.cpp.o"
  "CMakeFiles/dpmerge_analysis.dir/required_precision.cpp.o.d"
  "libdpmerge_analysis.a"
  "libdpmerge_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpmerge_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
