# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("dpmerge/support")
subdirs("dpmerge/dfg")
subdirs("dpmerge/analysis")
subdirs("dpmerge/transform")
subdirs("dpmerge/cluster")
subdirs("dpmerge/designs")
subdirs("dpmerge/netlist")
subdirs("dpmerge/synth")
subdirs("dpmerge/opt")
subdirs("dpmerge/formal")
subdirs("dpmerge/frontend")
