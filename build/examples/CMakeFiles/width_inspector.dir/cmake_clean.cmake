file(REMOVE_RECURSE
  "CMakeFiles/width_inspector.dir/width_inspector.cpp.o"
  "CMakeFiles/width_inspector.dir/width_inspector.cpp.o.d"
  "width_inspector"
  "width_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
