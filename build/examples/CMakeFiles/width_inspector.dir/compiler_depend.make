# Empty compiler generated dependencies file for width_inspector.
# This may be replaced when dependencies are built.
