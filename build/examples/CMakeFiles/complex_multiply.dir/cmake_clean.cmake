file(REMOVE_RECURSE
  "CMakeFiles/complex_multiply.dir/complex_multiply.cpp.o"
  "CMakeFiles/complex_multiply.dir/complex_multiply.cpp.o.d"
  "complex_multiply"
  "complex_multiply.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_multiply.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
