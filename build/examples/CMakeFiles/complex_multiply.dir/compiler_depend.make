# Empty compiler generated dependencies file for complex_multiply.
# This may be replaced when dependencies are built.
