# Empty dependencies file for dpc.
# This may be replaced when dependencies are built.
