file(REMOVE_RECURSE
  "CMakeFiles/dpc.dir/dpc.cpp.o"
  "CMakeFiles/dpc.dir/dpc.cpp.o.d"
  "dpc"
  "dpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
