file(REMOVE_RECURSE
  "CMakeFiles/timing_opt_test.dir/timing_opt_test.cpp.o"
  "CMakeFiles/timing_opt_test.dir/timing_opt_test.cpp.o.d"
  "timing_opt_test"
  "timing_opt_test.pdb"
  "timing_opt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_opt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
