# Empty compiler generated dependencies file for timing_opt_test.
# This may be replaced when dependencies are built.
