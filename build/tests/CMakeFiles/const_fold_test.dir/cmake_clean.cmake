file(REMOVE_RECURSE
  "CMakeFiles/const_fold_test.dir/const_fold_test.cpp.o"
  "CMakeFiles/const_fold_test.dir/const_fold_test.cpp.o.d"
  "const_fold_test"
  "const_fold_test.pdb"
  "const_fold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/const_fold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
