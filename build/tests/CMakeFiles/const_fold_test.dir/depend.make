# Empty dependencies file for const_fold_test.
# This may be replaced when dependencies are built.
