# Empty compiler generated dependencies file for width_prune_test.
# This may be replaced when dependencies are built.
