file(REMOVE_RECURSE
  "CMakeFiles/width_prune_test.dir/width_prune_test.cpp.o"
  "CMakeFiles/width_prune_test.dir/width_prune_test.cpp.o.d"
  "width_prune_test"
  "width_prune_test.pdb"
  "width_prune_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/width_prune_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
