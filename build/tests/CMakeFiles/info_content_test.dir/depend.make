# Empty dependencies file for info_content_test.
# This may be replaced when dependencies are built.
