file(REMOVE_RECURSE
  "CMakeFiles/info_content_test.dir/info_content_test.cpp.o"
  "CMakeFiles/info_content_test.dir/info_content_test.cpp.o.d"
  "info_content_test"
  "info_content_test.pdb"
  "info_content_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/info_content_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
