file(REMOVE_RECURSE
  "CMakeFiles/arch_options_test.dir/arch_options_test.cpp.o"
  "CMakeFiles/arch_options_test.dir/arch_options_test.cpp.o.d"
  "arch_options_test"
  "arch_options_test.pdb"
  "arch_options_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_options_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
