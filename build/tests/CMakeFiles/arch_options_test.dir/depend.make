# Empty dependencies file for arch_options_test.
# This may be replaced when dependencies are built.
