# Empty compiler generated dependencies file for required_precision_test.
# This may be replaced when dependencies are built.
