file(REMOVE_RECURSE
  "CMakeFiles/required_precision_test.dir/required_precision_test.cpp.o"
  "CMakeFiles/required_precision_test.dir/required_precision_test.cpp.o.d"
  "required_precision_test"
  "required_precision_test.pdb"
  "required_precision_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/required_precision_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
