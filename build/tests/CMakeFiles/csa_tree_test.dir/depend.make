# Empty dependencies file for csa_tree_test.
# This may be replaced when dependencies are built.
