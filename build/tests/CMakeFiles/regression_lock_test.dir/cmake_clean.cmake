file(REMOVE_RECURSE
  "CMakeFiles/regression_lock_test.dir/regression_lock_test.cpp.o"
  "CMakeFiles/regression_lock_test.dir/regression_lock_test.cpp.o.d"
  "regression_lock_test"
  "regression_lock_test.pdb"
  "regression_lock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_lock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
