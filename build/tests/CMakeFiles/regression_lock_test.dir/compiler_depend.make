# Empty compiler generated dependencies file for regression_lock_test.
# This may be replaced when dependencies are built.
