# Empty compiler generated dependencies file for synth_flow_test.
# This may be replaced when dependencies are built.
