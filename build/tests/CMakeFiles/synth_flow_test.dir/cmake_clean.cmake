file(REMOVE_RECURSE
  "CMakeFiles/synth_flow_test.dir/synth_flow_test.cpp.o"
  "CMakeFiles/synth_flow_test.dir/synth_flow_test.cpp.o.d"
  "synth_flow_test"
  "synth_flow_test.pdb"
  "synth_flow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
