file(REMOVE_RECURSE
  "CMakeFiles/ic_resize_property_test.dir/ic_resize_property_test.cpp.o"
  "CMakeFiles/ic_resize_property_test.dir/ic_resize_property_test.cpp.o.d"
  "ic_resize_property_test"
  "ic_resize_property_test.pdb"
  "ic_resize_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ic_resize_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
