# Empty dependencies file for ic_resize_property_test.
# This may be replaced when dependencies are built.
