# Empty dependencies file for formal_equiv_test.
# This may be replaced when dependencies are built.
