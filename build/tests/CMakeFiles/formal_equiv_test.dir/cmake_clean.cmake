file(REMOVE_RECURSE
  "CMakeFiles/formal_equiv_test.dir/formal_equiv_test.cpp.o"
  "CMakeFiles/formal_equiv_test.dir/formal_equiv_test.cpp.o.d"
  "formal_equiv_test"
  "formal_equiv_test.pdb"
  "formal_equiv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formal_equiv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
