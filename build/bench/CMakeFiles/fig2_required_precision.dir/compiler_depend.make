# Empty compiler generated dependencies file for fig2_required_precision.
# This may be replaced when dependencies are built.
