file(REMOVE_RECURSE
  "CMakeFiles/fig2_required_precision.dir/fig2_required_precision.cpp.o"
  "CMakeFiles/fig2_required_precision.dir/fig2_required_precision.cpp.o.d"
  "fig2_required_precision"
  "fig2_required_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_required_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
