# Empty compiler generated dependencies file for table2.
# This may be replaced when dependencies are built.
