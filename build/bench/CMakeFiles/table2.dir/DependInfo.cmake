
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2.cpp" "bench/CMakeFiles/table2.dir/table2.cpp.o" "gcc" "bench/CMakeFiles/table2.dir/table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dpmerge/synth/CMakeFiles/dpmerge_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/opt/CMakeFiles/dpmerge_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/designs/CMakeFiles/dpmerge_designs.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/transform/CMakeFiles/dpmerge_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/cluster/CMakeFiles/dpmerge_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/analysis/CMakeFiles/dpmerge_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/netlist/CMakeFiles/dpmerge_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/frontend/CMakeFiles/dpmerge_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/dfg/CMakeFiles/dpmerge_dfg.dir/DependInfo.cmake"
  "/root/repo/build/src/dpmerge/support/CMakeFiles/dpmerge_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
