# Empty compiler generated dependencies file for fig1_clusters.
# This may be replaced when dependencies are built.
