file(REMOVE_RECURSE
  "CMakeFiles/fig1_clusters.dir/fig1_clusters.cpp.o"
  "CMakeFiles/fig1_clusters.dir/fig1_clusters.cpp.o.d"
  "fig1_clusters"
  "fig1_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
