# Empty compiler generated dependencies file for fig4_rebalancing.
# This may be replaced when dependencies are built.
