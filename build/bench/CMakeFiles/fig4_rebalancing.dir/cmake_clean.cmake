file(REMOVE_RECURSE
  "CMakeFiles/fig4_rebalancing.dir/fig4_rebalancing.cpp.o"
  "CMakeFiles/fig4_rebalancing.dir/fig4_rebalancing.cpp.o.d"
  "fig4_rebalancing"
  "fig4_rebalancing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_rebalancing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
