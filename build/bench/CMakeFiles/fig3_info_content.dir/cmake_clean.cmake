file(REMOVE_RECURSE
  "CMakeFiles/fig3_info_content.dir/fig3_info_content.cpp.o"
  "CMakeFiles/fig3_info_content.dir/fig3_info_content.cpp.o.d"
  "fig3_info_content"
  "fig3_info_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_info_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
