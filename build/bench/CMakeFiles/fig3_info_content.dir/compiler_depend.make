# Empty compiler generated dependencies file for fig3_info_content.
# This may be replaced when dependencies are built.
