// Quickstart: build a small datapath DFG, run the paper's analyses, merge
// operators and synthesize a gate netlist.
//
//   r = (a * b) + (c - d) + e      (all inputs 8-bit signed)
//
// Prints the required precision and information content of every node, the
// cluster partition for each flow, and delay/area of the synthesized
// netlists.

#include <cstdio>

#include "dpmerge/analysis/info_content.h"
#include "dpmerge/analysis/required_precision.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"

int main() {
  using namespace dpmerge;
  using dfg::Operand;

  // 1. Build the DFG. Edge attributes are <width, signedness>: signals are
  // sign-extended into the 17-bit adders.
  dfg::Graph g;
  dfg::Builder b(g);
  const auto a = b.input("a", 8);
  const auto bb = b.input("b", 8);
  const auto c = b.input("c", 8);
  const auto d = b.input("d", 8);
  const auto e = b.input("e", 8);
  const auto prod = b.mul(16, Operand{a, 16, Sign::Signed},
                          Operand{bb, 16, Sign::Signed});
  const auto diff = b.sub(9, Operand{c, 9, Sign::Signed},
                          Operand{d, 9, Sign::Signed});
  const auto s1 = b.add(17, Operand{prod, 17, Sign::Signed},
                        Operand{diff, 17, Sign::Signed});
  const auto s2 = b.add(17, Operand{s1, 17, Sign::Signed},
                        Operand{e, 17, Sign::Signed});
  b.output("r", 17, Operand{s2, 17, Sign::Signed});

  // 2. The paper's two analyses.
  const auto rp = analysis::compute_required_precision(g);
  const auto ia = analysis::compute_info_content(g);
  std::printf("node  kind  width  r(out)  info content\n");
  for (const auto& n : g.nodes()) {
    std::printf("%4d  %-5s %5d  %6d  %s\n", n.id.value,
                std::string(dfg::to_string(n.kind)).c_str(), n.width,
                rp.r_out(n.id), ia.out(n.id).to_string().c_str());
  }

  // 3. Merge and synthesize under the three flows of the paper's Section 7.
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    const auto res = synth::run_flow(g, flow);
    const auto rep = sta.analyze(res.net);
    std::printf(
        "\n%-9s : %d cluster(s) -> %d gates, longest path %.2f ns, area %.0f\n",
        std::string(synth::to_string(flow)).c_str(),
        res.partition.num_clusters(), res.net.gate_count(),
        rep.longest_path_ns, sta.area(res.net));
    std::printf("  partition: %s\n", res.partition.summary(res.graph).c_str());
  }
  std::printf(
      "\nThe new flow computes the product and both additions in one CSA tree\n"
      "with a single final carry-propagate adder.\n");
  return 0;
}
