// dpc — a miniature datapath compiler built on the dpmerge library:
// compiles an RTL-expression source file (see dpmerge/frontend/parser.h for
// the language) through the paper's analysis + merging pipeline down to a
// gate netlist, and reports what each stage did.
//
// Usage: dpc [file] [options]      (no file: compile a built-in demo)
//   --verilog          print structural Verilog of the merged netlist
//   --fold             run constant folding / strength reduction first
//   --booth            radix-4 Booth partial products
//   --simplify         netlist clean-up (CSE + constant sweep) at the end
//   --adder=<arch>     ripple | kogge-stone | brent-kung | carry-select

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dpmerge/frontend/parser.h"
#include "dpmerge/netlist/simplify.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"
#include "dpmerge/transform/const_fold.h"

namespace {

constexpr const char* kDemo = R"(# built-in demo: a small filter kernel
design demo
input x0 : s8
input x1 : s8
input x2 : s8
input k  : u4
let acc : s12 = 3 * x0 + (x1 << 1) + x2
output y : s14 = acc - k
output sat : u1 = acc < k
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dpmerge;

  std::string source = kDemo;
  bool emit_verilog = false, fold = false, do_simplify = false;
  synth::SynthOptions sopt;
  std::string name = "demo";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verilog") == 0) {
      emit_verilog = true;
    } else if (std::strcmp(argv[i], "--fold") == 0) {
      fold = true;
    } else if (std::strcmp(argv[i], "--booth") == 0) {
      sopt.booth_multipliers = true;
    } else if (std::strcmp(argv[i], "--simplify") == 0) {
      do_simplify = true;
    } else if (std::strncmp(argv[i], "--adder=", 8) == 0) {
      const std::string a = argv[i] + 8;
      if (a == "ripple") sopt.adder = synth::AdderArch::Ripple;
      else if (a == "kogge-stone") sopt.adder = synth::AdderArch::KoggeStone;
      else if (a == "brent-kung") sopt.adder = synth::AdderArch::BrentKung;
      else if (a == "carry-select") sopt.adder = synth::AdderArch::CarrySelect;
      else {
        std::fprintf(stderr, "unknown adder '%s'\n", a.c_str());
        return 2;
      }
    } else {
      std::ifstream f(argv[i]);
      if (!f) {
        std::fprintf(stderr, "cannot open '%s'\n", argv[i]);
        return 2;
      }
      std::ostringstream ss;
      ss << f.rdbuf();
      source = ss.str();
      name = argv[i];
    }
  }

  frontend::CompileResult compiled;
  try {
    compiled = frontend::compile(source);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", name.c_str(), e.what());
    return 1;
  }
  if (!compiled.name.empty()) name = compiled.name;

  std::fprintf(stderr, "design '%s': %d nodes, %d inputs, %d outputs\n",
               name.c_str(), compiled.graph.node_count(),
               static_cast<int>(compiled.graph.inputs().size()),
               static_cast<int>(compiled.graph.outputs().size()));

  dfg::Graph work = compiled.graph;
  if (fold) {
    transform::FoldStats fs;
    work = transform::fold_constants(work, &fs);
    std::fprintf(stderr,
                 "fold: %d constant cones, %d strength reductions, %d "
                 "identities\n",
                 fs.constants_folded, fs.strength_reduced,
                 fs.identities_removed);
  }

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  synth::FlowResult chosen;
  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    auto res = synth::run_flow(work, flow, sopt);
    const auto rep = sta.analyze(res.net);
    std::fprintf(stderr,
                 "  %-9s: %2d cluster(s), %5d gates, %6.2f ns, area %7.0f\n",
                 std::string(synth::to_string(flow)).c_str(),
                 res.partition.num_clusters(), res.net.gate_count(),
                 rep.longest_path_ns, sta.area(res.net));
    if (flow == synth::Flow::NewMerge) chosen = std::move(res);
  }
  if (do_simplify) {
    netlist::SimplifyStats ss;
    chosen.net = netlist::simplify(chosen.net, &ss);
    std::fprintf(stderr, "simplify: %d -> %d gates\n", ss.gates_before,
                 ss.gates_after);
  }

  Rng rng(1);
  std::string why;
  // Verify against the ORIGINAL compiled graph — folding must be invisible.
  if (!synth::verify_netlist(chosen.net, compiled.graph, 64, rng, &why)) {
    std::fprintf(stderr, "VERIFICATION FAILED: %s\n", why.c_str());
    return 1;
  }
  std::fprintf(stderr, "netlist verified on 64 random vectors\n");

  if (emit_verilog) {
    std::fputs(netlist::to_verilog(chosen.net, name).c_str(), stdout);
  }
  return 0;
}
