// Complex multiplier example: (a + jb) * (c + jd) = (ac - bd) + j(ad + bc),
// the butterfly kernel of FFTs — one of the paper's motivating workloads.
// Each output is a sum/difference of two products, so the new merging flow
// reduces all four partial-product arrays of each component in a single CSA
// tree with one final adder per output (two final adders total, versus six
// carry-propagate structures without merging).

#include <cstdio>

#include "dpmerge/dfg/builder.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

int main() {
  using namespace dpmerge;
  using dfg::Operand;

  constexpr int kW = 12;    // component width
  constexpr int kProd = 24; // full product width
  constexpr int kOut = 25;  // sum of two products

  dfg::Graph g;
  dfg::Builder b(g);
  const auto a = b.input("a", kW);
  const auto bb = b.input("b", kW);
  const auto c = b.input("c", kW);
  const auto d = b.input("d", kW);
  auto mul = [&](dfg::NodeId x, dfg::NodeId y) {
    return b.mul(kProd, Operand{x, kProd, Sign::Signed},
                 Operand{y, kProd, Sign::Signed});
  };
  const auto ac = mul(a, c);
  const auto bd = mul(bb, d);
  const auto ad = mul(a, d);
  const auto bc = mul(bb, c);
  const auto re = b.sub(kOut, Operand{ac, kOut, Sign::Signed},
                        Operand{bd, kOut, Sign::Signed});
  const auto im = b.add(kOut, Operand{ad, kOut, Sign::Signed},
                        Operand{bc, kOut, Sign::Signed});
  b.output("re", kOut, Operand{re, kOut, Sign::Signed});
  b.output("im", kOut, Operand{im, kOut, Sign::Signed});

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  std::printf("complex multiplier, %d-bit components\n\n", kW);
  std::printf("%-9s   clusters  final-CPAs  gates  delay(ns)  area\n", "flow");
  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    const auto res = synth::run_flow(g, flow);
    const auto rep = sta.analyze(res.net);
    std::printf("%-9s   %8d  %10d  %5d  %9.2f  %.0f\n",
                std::string(synth::to_string(flow)).c_str(),
                res.partition.num_clusters(),
                res.partition.num_final_adders(), res.net.gate_count(),
                rep.longest_path_ns, sta.area(res.net));
  }

  const auto res = synth::run_flow(g, synth::Flow::NewMerge);
  Rng rng(99);
  std::string why;
  if (!synth::verify_netlist(res.net, g, 50, rng, &why)) {
    std::printf("verification FAILED: %s\n", why.c_str());
    return 1;
  }
  std::printf(
      "\nnetlist verified; with merging, re and im are each one CSA tree\n"
      "over two partial-product arrays plus a single final adder.\n");
  return 0;
}
