// FIR filter example: y = sum_k h_k * x_k for an 8-tap filter with constant
// integer coefficients — the classic DSP workload the paper's introduction
// motivates. Constant multiplies are exactly the "sum of constant multiples
// of inputs" form of Observation 5.9, so the whole filter merges into one
// CSA tree, and Huffman rebalancing proves a tight output width.

#include <cstdio>
#include <cstdlib>

#include "dpmerge/analysis/huffman.h"
#include "dpmerge/cluster/flatten.h"
#include "dpmerge/dfg/builder.h"
#include "dpmerge/dfg/eval.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/synth/verify.h"

int main() {
  using namespace dpmerge;
  using dfg::Operand;

  // A symmetric low-pass-ish tap set.
  const int taps[8] = {1, 3, 7, 12, 12, 7, 3, 1};
  constexpr int kSample = 8;   // input sample width
  constexpr int kAcc = 16;     // accumulator width in the "RTL"

  dfg::Graph g;
  dfg::Builder b(g);
  dfg::NodeId acc{};
  for (int k = 0; k < 8; ++k) {
    const auto x = b.input("x" + std::to_string(k), kSample);
    const auto h = b.constant(8, taps[k], "h" + std::to_string(k));
    const auto m = b.mul(kAcc, Operand{x, kAcc, Sign::Signed},
                         Operand{h, kAcc, Sign::Signed});
    acc = k == 0 ? m
                 : b.add(kAcc, Operand{acc, kAcc, Sign::Signed},
                         Operand{m, kAcc, Sign::Signed});
  }
  b.output("y", kAcc, Operand{acc, kAcc, Sign::Signed});

  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  std::printf("8-tap FIR, %d-bit samples, coefficients {1,3,7,12,12,7,3,1}\n\n",
              kSample);
  for (auto flow : {synth::Flow::NoMerge, synth::Flow::OldMerge,
                    synth::Flow::NewMerge}) {
    const auto res = synth::run_flow(g, flow);
    const auto rep = sta.analyze(res.net);
    std::printf("%-9s : %2d clusters, %5d gates, %.2f ns, area %.0f\n",
                std::string(synth::to_string(flow)).c_str(),
                res.partition.num_clusters(), res.net.gate_count(),
                rep.longest_path_ns, sta.area(res.net));
  }

  // The Observation 5.9 view: y as a sum of constant multiples, with the
  // Huffman-rebalanced bound on its information content.
  {
    dfg::Graph work = g;
    const auto cr = synth::prepare_new_merge(work);
    std::printf("\nnew-merge clustering: %s\n",
                cr.partition.summary(work).c_str());
    for (const auto& c : cr.partition.clusters) {
      const auto bound = cluster::rebalanced_cluster_bound(work, c, cr.info);
      std::printf("cluster rooted at node %d: rebalanced output bound %s\n",
                  c.root.value, bound.to_string().c_str());
    }
  }

  // Sanity: the merged netlist really filters.
  const auto res = synth::run_flow(g, synth::Flow::NewMerge);
  Rng rng(2024);
  std::string why;
  if (!synth::verify_netlist(res.net, g, 50, rng, &why)) {
    std::printf("verification FAILED: %s\n", why.c_str());
    return 1;
  }
  std::printf("\nnetlist verified against the DFG reference on 50 random "
              "sample vectors\n");
  return 0;
}
