// Width inspector: a small command-line tool that takes one of the built-in
// designs, runs the paper's analyses and transformations, and prints a
// before/after report of every operator width plus Graphviz dot for both
// graphs — the way a designer would use the library to audit redundant
// widths in an RTL datapath.
//
// Usage: width_inspector [d1|d2|d3|d4|d5|g2|g4|g5|<file.dfg>]  (default: d4)
//
// A `.dfg` argument is parsed with the text format of dpmerge/dfg/io.h, so
// the tool works on user designs too.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "dpmerge/designs/figures.h"
#include "dpmerge/designs/testcases.h"
#include "dpmerge/dfg/io.h"
#include "dpmerge/synth/flow.h"
#include "dpmerge/transform/width_prune.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const std::string which = argc > 1 ? argv[1] : "d4";
  dfg::Graph g;
  if (which.size() > 4 && which.substr(which.size() - 4) == ".dfg") {
    std::ifstream f(which);
    if (!f) {
      std::fprintf(stderr, "cannot open '%s'\n", which.c_str());
      return 2;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    try {
      g = dfg::parse_graph(ss.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "parse error: %s\n", e.what());
      return 2;
    }
  } else if (which == "d1") {
    g = designs::make_d1();
  } else if (which == "d2") {
    g = designs::make_d2();
  } else if (which == "d3") {
    g = designs::make_d3();
  } else if (which == "d4") {
    g = designs::make_d4();
  } else if (which == "d5") {
    g = designs::make_d5();
  } else if (which == "g2") {
    g = designs::figure1_g2();
  } else if (which == "g4") {
    g = designs::figure2_g4();
  } else if (which == "g5") {
    g = designs::figure3_g5();
  } else {
    std::fprintf(stderr, "unknown design '%s'\n", which.c_str());
    return 2;
  }

  const dfg::Graph before = g;
  const auto cr = synth::prepare_new_merge(g);

  std::printf("design %s: %d nodes, %d edges\n", which.c_str(),
              before.node_count(), before.edge_count());
  std::printf("\n%-5s %-6s  %-11s  %-11s\n", "node", "kind", "width before",
              "width after");
  int total_before = 0, total_after = 0;
  for (const auto& n : before.nodes()) {
    if (!dfg::is_arith_operator(n.kind)) continue;
    const int after = g.node(n.id).width;
    total_before += n.width;
    total_after += after;
    std::printf("%-5d %-6s  %-12d  %-11d%s\n", n.id.value,
                std::string(dfg::to_string(n.kind)).c_str(), n.width, after,
                after < n.width ? "  <- pruned" : "");
  }
  std::printf("\ntotal operator bits: %d -> %d (%.1f%% removed)\n",
              total_before, total_after,
              100.0 * (total_before - total_after) / total_before);
  std::printf("clusters after maximal merging: %d (in %d iteration(s))\n",
              cr.partition.num_clusters(), cr.iterations);

  std::printf("\n--- dot: original ---\n%s", before.to_dot().c_str());
  std::printf("\n--- dot: transformed ---\n%s", g.to_dot().c_str());
  return 0;
}
