// Exports the merged netlist of a built-in design (default D1) as
// structural Verilog over the cell library — the hand-off format for the
// gate-level optimisation and place-and-route steps downstream of datapath
// synthesis.
//
// Usage: verilog_export [d1|d2|d3|d4|d5] [no|old|new]

#include <cstdio>
#include <string>

#include "dpmerge/designs/testcases.h"
#include "dpmerge/netlist/sta.h"
#include "dpmerge/netlist/verilog.h"
#include "dpmerge/synth/flow.h"

int main(int argc, char** argv) {
  using namespace dpmerge;

  const std::string which = argc > 1 ? argv[1] : "d1";
  const std::string flow_s = argc > 2 ? argv[2] : "new";

  dfg::Graph g;
  for (const auto& tc : designs::all_testcases()) {
    std::string lower = tc.name;
    for (auto& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == which) g = tc.graph;
  }
  if (g.node_count() == 0) {
    std::fprintf(stderr, "unknown design '%s'\n", which.c_str());
    return 2;
  }
  synth::Flow flow = synth::Flow::NewMerge;
  if (flow_s == "no") flow = synth::Flow::NoMerge;
  if (flow_s == "old") flow = synth::Flow::OldMerge;

  const auto res = synth::run_flow(g, flow);
  netlist::Sta sta(netlist::CellLibrary::tsmc025());
  std::fprintf(stderr, "// %s, %s flow: %d gates, %.2f ns, area %.0f\n",
               which.c_str(), std::string(synth::to_string(flow)).c_str(),
               res.net.gate_count(),
               sta.analyze(res.net).longest_path_ns, sta.area(res.net));
  std::fputs(netlist::to_verilog(res.net, which + "_" + flow_s).c_str(),
             stdout);
  return 0;
}
